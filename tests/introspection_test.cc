// The live-introspection layer end to end: the run journal's JSONL
// contract (valid lines, monotonic sequence numbers, replayable ω
// convergence), the status server's four endpoints over real sockets,
// /runz reflecting a live sharded run mid-flight, the crash flight
// recorder's kill-at-boundary sweep (every non-clean StopReason leaves a
// valid post-mortem), and — the overriding contract — introspection
// never changes mining answers.
//
// The journal and server are process-wide singletons, so these tests are
// written to tolerate state left by earlier tests in this binary (run
// tables accumulate; live tracking, once enabled, is sticky).  Order
// matters only for the first test, which pins the inactive default.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/run_context.h"
#include "core/miner.h"
#include "core/nm_engine.h"
#include "datagen/planted_generator.h"
#include "geometry/grid.h"
#include "json_check.h"
#include "obs/flight_recorder.h"
#include "obs/journal.h"
#include "server/fault_injector.h"
#include "server/mining_supervisor.h"
#include "server/status_server.h"

namespace trajpattern {
namespace {

using obs::JournalEvent;
using obs::JournalEventType;
using obs::RunJournal;
using obs::RunSnapshot;

// ------------------------------------------------------------- fixtures

TrajectoryDataset MakeMiningData() {
  PlantedPatternOptions opt;
  opt.pattern = {Point2(0.15, 0.15), Point2(0.45, 0.45), Point2(0.75, 0.75)};
  opt.num_with_pattern = 12;
  opt.num_background = 6;
  opt.num_snapshots = 12;
  opt.seed = 7;
  return GeneratePlantedPatterns(opt);
}

// A 5-cell planted chain under min_length=2: several grow iterations, so
// the journal has real boundaries to record.
TrajectoryDataset MakeDeepMiningData() {
  PlantedPatternOptions opt;
  opt.pattern = {Point2(0.15, 0.15), Point2(0.35, 0.35), Point2(0.55, 0.55),
                 Point2(0.75, 0.75), Point2(0.95, 0.95)};
  opt.num_with_pattern = 30;
  opt.num_background = 0;
  opt.num_snapshots = 10;
  opt.sigma = 0.005;
  opt.seed = 7;
  return GeneratePlantedPatterns(opt);
}

MiningSpace MakeSpace() { return MiningSpace(Grid::UnitSquare(8), 0.125); }

MinerOptions MakeOptions() {
  MinerOptions opt;
  opt.k = 10;
  opt.max_pattern_length = 4;
  return opt;
}

MinerOptions MakeDeepOptions() {
  MinerOptions opt;
  opt.k = 10;
  opt.min_length = 2;
  opt.max_pattern_length = 5;
  return opt;
}

void ExpectBitIdentical(const std::vector<ScoredPattern>& a,
                        const std::vector<ScoredPattern>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pattern, b[i].pattern) << "rank " << i;
    EXPECT_EQ(std::memcmp(&a[i].nm, &b[i].nm, sizeof(double)), 0)
        << "rank " << i;
  }
}

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// Extracts `"key": <number>` from a JSON line; nan when absent.
double NumField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

bool HasEvent(const std::string& line, const char* type) {
  return line.find(std::string("\"event\": \"") + type + "\"") !=
         std::string::npos;
}

// Minimal blocking HTTP client for the raw-socket leg of the server
// tests (HandlePath covers the handlers; this covers the wire).
std::string HttpGet(int port, const std::string& path) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::string out;
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
    if (send(fd, req.data(), req.size(), 0) ==
        static_cast<ssize_t>(req.size())) {
      char buf[4096];
      ssize_t n;
      while ((n = read(fd, buf, sizeof(buf))) > 0) out.append(buf, n);
    }
  }
  close(fd);
  return out;
}

std::string HttpBody(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

// --------------------------------------------------------- journal basics

TEST(RunJournalTest, InactiveByDefaultCostsNothingAndTracksNothing) {
  // Must run before anything in this binary touches the journal: the
  // default is off, BeginRun hands back the "don't bother" id, and Emit
  // is a no-op.
  RunJournal& j = RunJournal::Global();
  ASSERT_FALSE(j.active());
  EXPECT_EQ(j.BeginRun(5, 0, false), 0);
  JournalEvent ev;
  ev.type = JournalEventType::kRoundCommitted;
  j.Emit(ev);
  EXPECT_EQ(j.events_emitted(), 0u);
  EXPECT_TRUE(j.Runs().empty());
  EXPECT_TRUE(j.TailLines(16).empty());
  EXPECT_EQ(j.path(), "");
}

TEST(RunJournalTest, StreamsValidJsonlWithMonotonicSeqs) {
  const std::string path = TempPath("tp_journal_basic.jsonl");
  RunJournal& j = RunJournal::Global();
  ASSERT_TRUE(j.Open(path));
  EXPECT_TRUE(j.active());
  EXPECT_EQ(j.path(), path);

  const TrajectoryDataset data = MakeDeepMiningData();
  NmEngine engine(data, MakeSpace());
  const MiningResult result = MineTrajPatterns(engine, MakeDeepOptions());
  ASSERT_FALSE(result.stats.aborted);
  j.Close();
  EXPECT_FALSE(j.active());  // no live tracking was requested

  std::string text;
  ASSERT_TRUE(test::ReadFileToString(path, &text));
  const std::vector<std::string> lines = SplitLines(text);
  ASSERT_GE(lines.size(), 3u);  // started, >= 1 round, stopped

  double prev_seq = 0.0;
  for (const std::string& line : lines) {
    EXPECT_TRUE(test::IsValidJson(line)) << line;
    const double seq = NumField(line, "seq");
    EXPECT_GT(seq, prev_seq) << "sequence numbers must be monotonic";
    prev_seq = seq;
  }
  EXPECT_TRUE(HasEvent(lines.front(), "run_started")) << lines.front();
  EXPECT_TRUE(HasEvent(lines.back(), "run_stopped")) << lines.back();
  EXPECT_NE(lines.back().find("\"stop_reason\": \"none\""), std::string::npos)
      << lines.back();
  std::remove(path.c_str());
}

TEST(RunJournalTest, ReplayReconstructsMonotoneOmegaConvergence) {
  // The journal's reason to exist: reading the round_committed /
  // omega_tightened series back must yield the non-decreasing ω
  // time series the threshold contract guarantees.
  const std::string path = TempPath("tp_journal_omega.jsonl");
  RunJournal& j = RunJournal::Global();
  ASSERT_TRUE(j.Open(path));

  const TrajectoryDataset data = MakeDeepMiningData();
  NmEngine engine(data, MakeSpace());
  const MiningResult result = MineTrajPatterns(engine, MakeDeepOptions());
  ASSERT_FALSE(result.stats.aborted);
  j.Close();

  std::string text;
  ASSERT_TRUE(test::ReadFileToString(path, &text));
  double omega = -std::numeric_limits<double>::infinity();
  int rounds = 0;
  double prev_iteration = 0.0;
  for (const std::string& line : SplitLines(text)) {
    if (!HasEvent(line, "round_committed") &&
        !HasEvent(line, "omega_tightened")) {
      continue;
    }
    const double o = NumField(line, "omega");
    if (!std::isnan(o)) {
      EXPECT_GE(o, omega) << "omega regressed in replay: " << line;
      omega = std::max(omega, o);
    }
    if (HasEvent(line, "round_committed")) {
      ++rounds;
      const double iter = NumField(line, "iteration");
      EXPECT_GT(iter, prev_iteration) << line;
      prev_iteration = iter;
      // Cumulative counters ride along on every round.
      EXPECT_FALSE(std::isnan(NumField(line, "evaluated")));
      EXPECT_FALSE(std::isnan(NumField(line, "frontier")));
    }
  }
  EXPECT_EQ(rounds, result.stats.iterations);
  // The final journal ω is the answer's kth score (the run's threshold).
  EXPECT_GT(rounds, 1);
  std::remove(path.c_str());
}

TEST(RunJournalTest, ShardedRunJournalsPerShardTightenings) {
  const std::string path = TempPath("tp_journal_sharded.jsonl");
  RunJournal& j = RunJournal::Global();
  ASSERT_TRUE(j.Open(path));

  const TrajectoryDataset data = MakeDeepMiningData();
  NmEngine engine(data, MakeSpace());
  MinerOptions opt = MakeDeepOptions();
  opt.num_shards = 2;
  opt.omega_pruning = true;
  const MiningResult result = MineTrajPatterns(engine, opt);
  ASSERT_FALSE(result.stats.aborted);
  j.Close();

  std::string text;
  ASSERT_TRUE(test::ReadFileToString(path, &text));
  const std::vector<std::string> lines = SplitLines(text);
  // The run advertises its shard count at start...
  EXPECT_NE(lines.front().find("\"shards\": 2"), std::string::npos)
      << lines.front();
  // ...and the coordinator journals at least one per-shard ω tightening
  // (a 2-shard planted-pattern run always tightens from -inf).
  int tightenings_with_shard = 0;
  for (const std::string& line : lines) {
    if (HasEvent(line, "omega_tightened") &&
        !std::isnan(NumField(line, "shard"))) {
      ++tightenings_with_shard;
    }
    EXPECT_TRUE(test::IsValidJson(line)) << line;
  }
  EXPECT_GT(tightenings_with_shard, 0);
  std::remove(path.c_str());
}

// --------------------------------------------------------- journal replay

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(JournalReplayTest, ReplaysACleanJournalInFull) {
  const std::string path = TempPath("tp_replay_clean.jsonl");
  RunJournal& j = RunJournal::Global();
  ASSERT_TRUE(j.Open(path));
  const TrajectoryDataset data = MakeDeepMiningData();
  NmEngine engine(data, MakeSpace());
  const MiningResult result = MineTrajPatterns(engine, MakeDeepOptions());
  ASSERT_FALSE(result.stats.aborted);
  j.Close();

  std::string text;
  ASSERT_TRUE(test::ReadFileToString(path, &text));
  const std::vector<std::string> expect = SplitLines(text);

  obs::JournalReplay replay;
  const Status s = obs::ReplayJournalFile(path, &replay);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(replay.torn_tail_lines, 0u);
  ASSERT_EQ(replay.lines.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(replay.lines[i], expect[i]);
    EXPECT_TRUE(test::IsValidJson(replay.lines[i])) << replay.lines[i];
  }
  std::remove(path.c_str());
}

TEST(JournalReplayTest, ChoppedTrailingAppendIsSkippedNotFatal) {
  // A kill mid-append leaves the final line truncated at an arbitrary
  // byte.  Replay must survive every chop point: the complete prefix
  // comes back, the torn tail is counted, and nothing is misparsed.
  const std::string l1 =
      "{\"seq\": 1, \"event\": \"run_started\", \"run_id\": 1}";
  const std::string l2 =
      "{\"seq\": 2, \"event\": \"round_committed\", \"omega\": -12.5}";
  const std::string l3 =
      "{\"seq\": 3, \"event\": \"run_stopped\", \"stop_reason\": \"none\"}";
  const std::string path = TempPath("tp_replay_chopped.jsonl");
  const std::string intact = l1 + "\n" + l2 + "\n";

  for (size_t cut = 1; cut <= l3.size(); ++cut) {
    WriteFileBytes(path, intact + l3.substr(0, cut));
    obs::JournalReplay replay;
    const Status s = obs::ReplayJournalFile(path, &replay);
    ASSERT_TRUE(s.ok()) << "cut=" << cut << ": " << s.ToString();
    ASSERT_GE(replay.lines.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(replay.lines[0], l1);
    EXPECT_EQ(replay.lines[1], l2);
    if (cut == l3.size()) {
      // The whole object made it out; only the '\n' was lost.
      EXPECT_EQ(replay.lines.size(), 3u);
      EXPECT_EQ(replay.lines[2], l3);
      EXPECT_EQ(replay.torn_tail_lines, 0u);
    } else {
      EXPECT_EQ(replay.lines.size(), 2u) << "cut=" << cut;
      EXPECT_EQ(replay.torn_tail_lines, 1u) << "cut=" << cut;
    }
  }
  std::remove(path.c_str());
}

TEST(JournalReplayTest, MidFileCorruptionIsDataLossNotSilence) {
  // Only the *tail* can be torn by a crashed append; a broken line with
  // valid lines after it means real corruption and must fail typed.
  const std::string path = TempPath("tp_replay_corrupt.jsonl");
  WriteFileBytes(path,
                 "{\"seq\": 1, \"event\": \"run_started\"}\n"
                 "{\"seq\": 2, \"event\": \"round_com\n"
                 "{\"seq\": 3, \"event\": \"run_stopped\"}\n");
  obs::JournalReplay replay;
  const Status s = obs::ReplayJournalFile(path, &replay);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss) << s.ToString();
  std::remove(path.c_str());
}

TEST(JournalReplayTest, MissingFileIsNotFound) {
  obs::JournalReplay replay;
  const Status s =
      obs::ReplayJournalFile(TempPath("tp_replay_nope.jsonl"), &replay);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

// ------------------------------------------- introspection changes nothing

TEST(IntrospectionIdentityTest, JournalAndServerNeverChangeAnswers) {
  const TrajectoryDataset data = MakeDeepMiningData();
  const MiningSpace space = MakeSpace();
  const MinerOptions base = MakeDeepOptions();
  MinerOptions sharded = base;
  sharded.num_shards = 2;
  sharded.omega_pruning = true;

  NmEngine baseline_engine(data, space);
  const MiningResult baseline = MineTrajPatterns(baseline_engine, base);
  NmEngine sharded_baseline_engine(data, space);
  const MiningResult sharded_baseline =
      MineTrajPatterns(sharded_baseline_engine, sharded);

  // Full introspection on: journal streaming, live tracking, status
  // server answering between runs.
  const std::string path = TempPath("tp_identity.jsonl");
  ASSERT_TRUE(RunJournal::Global().Open(path));
  StatusServer server;
  ASSERT_TRUE(server.Start({}).ok());

  NmEngine observed_engine(data, space);
  const MiningResult observed = MineTrajPatterns(observed_engine, base);
  EXPECT_NE(HttpGet(server.port(), "/runz").find("200 OK"),
            std::string::npos);
  NmEngine observed_sharded_engine(data, space);
  const MiningResult observed_sharded =
      MineTrajPatterns(observed_sharded_engine, sharded);

  server.Stop();
  RunJournal::Global().Close();

  ExpectBitIdentical(observed.patterns, baseline.patterns);
  ExpectBitIdentical(observed_sharded.patterns, sharded_baseline.patterns);
  std::remove(path.c_str());
}

// ------------------------------------------------------- status server

TEST(StatusServerTest, ServesAllEndpointsOverRealSockets) {
  StatusServer server;
  ASSERT_TRUE(server.Start({}).ok());
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  // Give /runz something to show.
  const TrajectoryDataset data = MakeMiningData();
  NmEngine engine(data, MakeSpace());
  (void)MineTrajPatterns(engine, MakeOptions());

  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_EQ(HttpBody(health), "ok\n");

  const std::string runz = HttpGet(server.port(), "/runz");
  EXPECT_NE(runz.find("200 OK"), std::string::npos);
  EXPECT_NE(runz.find("application/json"), std::string::npos);
  EXPECT_TRUE(test::IsValidJson(HttpBody(runz))) << HttpBody(runz);
  EXPECT_NE(HttpBody(runz).find("\"runs\""), std::string::npos);
  EXPECT_NE(HttpBody(runz).find("\"shards\""), std::string::npos);

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);

  const std::string tracez = HttpGet(server.port(), "/tracez");
  EXPECT_NE(tracez.find("200 OK"), std::string::npos);
  EXPECT_TRUE(test::IsValidJson(HttpBody(tracez)));
  EXPECT_NE(HttpBody(tracez).find("\"droppedEvents\""), std::string::npos);

  EXPECT_NE(HttpGet(server.port(), "/nonsense").find("404"),
            std::string::npos);
  // Query strings are stripped before routing.
  EXPECT_NE(HttpGet(server.port(), "/healthz?verbose=1").find("200 OK"),
            std::string::npos);

  const int port = server.port();
  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(HttpGet(port, "/healthz"), "");  // really stopped
  server.Stop();                             // idempotent
}

TEST(StatusServerTest, HandlersAreCoverableWithoutSockets) {
  EXPECT_NE(StatusServer::HandlePath("/healthz").find("200 OK"),
            std::string::npos);
  EXPECT_NE(StatusServer::HandlePath("/metrics").find("200 OK"),
            std::string::npos);
  EXPECT_NE(StatusServer::HandlePath("/runz").find("200 OK"),
            std::string::npos);
  EXPECT_NE(StatusServer::HandlePath("/tracez").find("200 OK"),
            std::string::npos);
  EXPECT_NE(StatusServer::HandlePath("/").find("404"), std::string::npos);
  EXPECT_TRUE(test::IsValidJson(StatusServer::RunzJson()));

  RunSnapshot snap;
  std::string json;
  obs::AppendRunSnapshotJson(snap, &json);
  EXPECT_TRUE(test::IsValidJson(json)) << json;  // -inf ω must not leak
}

TEST(StatusServerTest, RunzReflectsLiveShardedRunMidFlight) {
  RunJournal::Global().EnableLiveTracking();
  StatusServer server;
  ASSERT_TRUE(server.Start({}).ok());

  // Park a sharded run at its first checkpoint boundary, then inspect it
  // from outside while it is provably mid-flight.
  std::mutex mu;
  std::condition_variable cv;
  bool parked = false;
  bool release = false;
  const TrajectoryDataset data = MakeDeepMiningData();
  NmEngine engine(data, MakeSpace());
  MinerOptions opt = MakeDeepOptions();
  opt.num_shards = 2;
  opt.omega_pruning = true;
  opt.checkpoint_sink = [&](const MinerCheckpoint&) {
    std::unique_lock<std::mutex> lock(mu);
    parked = true;
    cv.notify_all();
    cv.wait_for(lock, std::chrono::seconds(30), [&] { return release; });
    return true;
  };

  MiningResult result;
  std::thread miner([&] { result = MineTrajPatterns(engine, opt); });
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(
        cv.wait_for(lock, std::chrono::seconds(30), [&] { return parked; }));
  }

  const std::string live = HttpBody(HttpGet(server.port(), "/runz"));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  miner.join();
  server.Stop();

  ASSERT_TRUE(test::IsValidJson(live)) << live;
  EXPECT_NE(live.find("\"active\": true"), std::string::npos) << live;
  EXPECT_NE(live.find("\"num_shards\": 2"), std::string::npos) << live;
  EXPECT_NE(live.find("\"omega\""), std::string::npos);
  EXPECT_NE(live.find("\"frontier_depth\""), std::string::npos);
  EXPECT_NE(live.find("\"checkpoint_age_ms\""), std::string::npos);
#if TRAJPATTERN_OBS_ENABLED
  // The shards section is registry-derived: per-shard ω gauges plus the
  // coordinator's merge-latency histogram.
  EXPECT_NE(live.find("\"global_omega\""), std::string::npos) << live;
  EXPECT_NE(live.find("\"per_shard\""), std::string::npos);
  EXPECT_NE(live.find("\"merge_latency_ms\""), std::string::npos);
#endif
  ASSERT_FALSE(result.stats.aborted);

  // After release, the same run shows up finished with a clean stop.
  const std::string after = StatusServer::RunzJson();
  EXPECT_NE(after.find("\"stop_reason\": \"none\""), std::string::npos)
      << after;
}

// ------------------------------------------------------ flight recorder

TEST(FlightRecorderTest, JsonIsValidEvenWithNoState) {
  const std::string json = obs::FlightRecordJson("unit_test", "no state");
  EXPECT_TRUE(test::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"trigger\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"journal\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
}

TEST(FlightRecorderTest, WriteToMissingDirectoryFailsCleanly) {
  EXPECT_EQ(obs::WriteFlightRecord(::testing::TempDir() + "/no_such_dir_xyz",
                                   "t", "d"),
            "");
}

// The kill-at-boundary sweep: every way a run can die non-cleanly under
// the supervisor must leave a valid flight record naming its stop.
struct KillCase {
  const char* name;
  StopReason expected;
};

TEST(FlightRecorderTest, EveryNonCleanStopLeavesAPostMortem) {
  RunJournal::Global().EnableLiveTracking();
  const TrajectoryDataset data = MakeMiningData();
  const MiningSpace space = MakeSpace();
  const std::string dir = ::testing::TempDir();

  const std::vector<KillCase> cases = {
      {"cancelled", StopReason::kCancelled},
      {"deadline_exceeded", StopReason::kDeadlineExceeded},
      {"memory_budget_exceeded", StopReason::kMemoryBudgetExceeded},
      {"sink_veto", StopReason::kSinkVeto},
      {"alloc_failed", StopReason::kAllocFailed},
  };
  for (const KillCase& kc : cases) {
    SCOPED_TRACE(kc.name);
    NmEngine engine(data, space);
    FaultScheduleOptions fo;
    fo.fail_rate = 1.0;
    FaultSchedule faults(fo);
    SupervisorOptions sup;
    sup.checkpoint_path =
        TempPath(std::string("tp_flight_") + kc.name + ".ckpt");
    sup.miner = MakeOptions();
    sup.flight_record_dir = dir;
    sup.sleep_fn = [](double) {};
    switch (kc.expected) {
      case StopReason::kCancelled:
        sup.miner.run.token.Cancel();
        break;
      case StopReason::kDeadlineExceeded:
        sup.miner.run.SetDeadlineAfterMillis(-1.0);
        break;
      case StopReason::kMemoryBudgetExceeded:
        sup.miner.run.memory_budget_bytes = 1;
        break;
      case StopReason::kSinkVeto:
        sup.checkpoint_retries = 1;
        sup.sink_faults = &faults;
        break;
      case StopReason::kAllocFailed:
        engine.set_alloc_fault_hook(
            [&faults](size_t) { return faults.ShouldFail(); });
        break;
      default:
        FAIL() << "unhandled case";
    }
    MiningSupervisor supervisor(&engine, sup);
    const SupervisorReport report = supervisor.Run();
    EXPECT_EQ(report.result.stats.stop_reason, kc.expected);

    ASSERT_EQ(report.flight_records.size(), 1u);
    std::string json;
    ASSERT_TRUE(test::ReadFileToString(report.flight_records[0], &json));
    EXPECT_TRUE(test::IsValidJson(json)) << json;
    EXPECT_NE(json.find("\"trigger\": \"abort\""), std::string::npos);
    EXPECT_NE(json.find(StopReasonName(kc.expected)), std::string::npos)
        << "post-mortem must name its stop reason";
    std::remove(report.flight_records[0].c_str());
    std::remove(sup.checkpoint_path.c_str());
  }
}

TEST(FlightRecorderTest, CrashRestartsDumpAndJournalTheException) {
  RunJournal::Global().EnableLiveTracking();
  const TrajectoryDataset data = MakeMiningData();
  NmEngine engine(data, MakeSpace());
  SupervisorOptions sup;
  sup.checkpoint_path = TempPath("tp_flight_crash.ckpt");
  sup.miner = MakeOptions();
  sup.flight_record_dir = ::testing::TempDir();
  sup.max_restarts = 1;
  sup.write_fn = [](const MinerCheckpoint&, const std::string&) -> Status {
    throw std::runtime_error("disk controller on fire");
  };
  sup.sleep_fn = [](double) {};
  MiningSupervisor supervisor(&engine, sup);
  const SupervisorReport report = supervisor.Run();
  EXPECT_EQ(report.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(report.restarts, 1);

  // One dump per crash: the restarted attempt and the terminal one.
  ASSERT_EQ(report.flight_records.size(), 2u);
  for (const std::string& path : report.flight_records) {
    std::string json;
    ASSERT_TRUE(test::ReadFileToString(path, &json));
    EXPECT_TRUE(test::IsValidJson(json)) << json;
    EXPECT_NE(json.find("\"trigger\": \"crash\""), std::string::npos);
    EXPECT_NE(json.find("disk controller on fire"), std::string::npos);
    std::remove(path.c_str());
  }
  // The journal's tail ring saw the restart and both dumps.
  bool saw_restart = false, saw_dump = false;
  for (const std::string& line : RunJournal::Global().TailLines(64)) {
    if (HasEvent(line, "supervisor_restart")) saw_restart = true;
    if (HasEvent(line, "flight_dump")) saw_dump = true;
  }
  EXPECT_TRUE(saw_restart);
  EXPECT_TRUE(saw_dump);
  std::remove(sup.checkpoint_path.c_str());
}

}  // namespace
}  // namespace trajpattern
