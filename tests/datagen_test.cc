#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "datagen/bus_generator.h"
#include "datagen/planted_generator.h"
#include "datagen/uniform_generator.h"
#include "datagen/zebranet_generator.h"
#include "geometry/bounding_box.h"

namespace trajpattern {
namespace {

TEST(UniformGeneratorTest, ShapeAndDeterminism) {
  UniformGeneratorOptions opt;
  opt.num_objects = 7;
  opt.num_snapshots = 13;
  opt.seed = 5;
  const TrajectoryDataset a = GenerateUniformObjects(opt);
  const TrajectoryDataset b = GenerateUniformObjects(opt);
  ASSERT_EQ(a.size(), 7u);
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), 13u);
    for (size_t s = 0; s < a[i].size(); ++s) {
      EXPECT_EQ(a[i][s].mean, b[i][s].mean);
    }
  }
}

TEST(UniformGeneratorTest, StaysInUnitSquare) {
  UniformGeneratorOptions opt;
  opt.num_objects = 20;
  opt.num_snapshots = 200;
  opt.max_speed = 0.05;
  opt.seed = 8;
  const TrajectoryDataset d = GenerateUniformObjects(opt);
  const BoundingBox unit = BoundingBox::UnitSquare();
  for (const auto& t : d) {
    for (const auto& p : t) {
      EXPECT_TRUE(unit.Contains(p.mean)) << p.mean.x << "," << p.mean.y;
    }
  }
}

TEST(UniformGeneratorTest, DifferentSeedsDiffer) {
  UniformGeneratorOptions opt;
  opt.num_objects = 3;
  opt.num_snapshots = 5;
  opt.seed = 1;
  const TrajectoryDataset a = GenerateUniformObjects(opt);
  opt.seed = 2;
  const TrajectoryDataset b = GenerateUniformObjects(opt);
  bool differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t s = 0; s < a[i].size(); ++s) {
      if (!(a[i][s].mean == b[i][s].mean)) differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(ZebraNetGeneratorTest, ShapeAndBounds) {
  ZebraNetGeneratorOptions opt;
  opt.num_zebras = 30;
  opt.num_groups = 5;
  opt.num_snapshots = 40;
  opt.seed = 3;
  const TrajectoryDataset d = GenerateZebraNet(opt);
  ASSERT_EQ(d.size(), 30u);
  const BoundingBox unit = BoundingBox::UnitSquare();
  for (const auto& t : d) {
    ASSERT_EQ(t.size(), 40u);
    for (const auto& p : t) {
      EXPECT_TRUE(unit.Contains(p.mean));
      EXPECT_DOUBLE_EQ(p.sigma, opt.sigma);
    }
  }
}

TEST(ZebraNetGeneratorTest, GroupMembersMoveTogether) {
  ZebraNetGeneratorOptions opt;
  opt.num_zebras = 20;
  opt.num_groups = 2;
  opt.num_snapshots = 30;
  opt.leave_probability = 0.0;  // nobody leaves
  opt.individual_noise = 0.001;
  opt.seed = 4;
  const TrajectoryDataset d = GenerateZebraNet(opt);
  // Zebras 0 and 2 are in group 0 (round-robin assignment); their paths
  // should stay close (same group moves, small noise).
  double max_dist = 0.0;
  for (size_t s = 0; s < d[0].size(); ++s) {
    max_dist = std::max(max_dist, Distance(d[0][s].mean, d[2][s].mean));
  }
  EXPECT_LT(max_dist, 0.1);
}

TEST(ZebraNetGeneratorTest, SolitaryZebrasDiverge) {
  ZebraNetGeneratorOptions opt;
  opt.num_zebras = 10;
  opt.num_groups = 1;
  opt.num_snapshots = 60;
  opt.leave_probability = 0.5;  // most leave quickly
  opt.seed = 6;
  const TrajectoryDataset d = GenerateZebraNet(opt);
  // With aggressive leaving, endpoints should spread out.
  double spread = 0.0;
  const size_t last = d[0].size() - 1;
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t j = i + 1; j < d.size(); ++j) {
      spread = std::max(spread, Distance(d[i][last].mean, d[j][last].mean));
    }
  }
  EXPECT_GT(spread, 0.05);
}

TEST(BusGeneratorTest, ShapeAndIds) {
  BusGeneratorOptions opt;
  opt.num_routes = 2;
  opt.buses_per_route = 3;
  opt.num_days = 2;
  opt.num_snapshots = 25;
  opt.seed = 5;
  const TrajectoryDataset d = GenerateBusTraces(opt);
  ASSERT_EQ(d.size(), 12u);  // 2 routes * 3 buses * 2 days
  EXPECT_EQ(d[0].id(), "d0_r0_b0");
  EXPECT_EQ(d[11].id(), "d1_r1_b2");
  for (const auto& t : d) EXPECT_EQ(t.size(), 25u);
}

TEST(BusGeneratorTest, DayMajorOrderSupportsTrainTestSplit) {
  BusGeneratorOptions opt;
  opt.num_routes = 2;
  opt.buses_per_route = 2;
  opt.num_days = 3;
  opt.num_snapshots = 10;
  const TrajectoryDataset d = GenerateBusTraces(opt);
  const auto [train, test] = d.Split(d.size() - 4);
  EXPECT_EQ(test.size(), 4u);
  for (size_t i = 0; i < test.size(); ++i) {
    EXPECT_EQ(test[i].id().substr(0, 2), "d2");  // last day only
  }
}

TEST(BusGeneratorTest, BusesFollowTheirRouteLoop) {
  BusGeneratorOptions opt;
  opt.num_routes = 2;
  opt.buses_per_route = 2;
  opt.num_days = 1;
  opt.num_snapshots = 50;
  opt.gps_noise = 0.001;
  opt.seed = 7;
  const TrajectoryDataset d = GenerateBusTraces(opt);
  const auto routes = BusRouteWaypoints(opt);
  // Every observed point must be near its route polyline: within the
  // route's bounding box inflated generously.
  for (size_t i = 0; i < d.size(); ++i) {
    const int route = (static_cast<int>(i) / opt.buses_per_route) %
                      opt.num_routes;
    BoundingBox box;
    for (const auto& wp : routes[route]) box.Extend(wp);
    box.Inflate(0.02);
    for (const auto& p : d[i]) {
      EXPECT_TRUE(box.Contains(p.mean));
    }
  }
}

TEST(BusGeneratorTest, SharedPoolRoutesShareWaypoints) {
  BusGeneratorOptions opt;
  opt.num_routes = 4;
  opt.waypoint_pool = 8;
  opt.min_waypoints = 5;
  opt.max_waypoints = 7;
  opt.seed = 3;
  const auto routes = BusRouteWaypoints(opt);
  ASSERT_EQ(routes.size(), 4u);
  // Count waypoints shared between route pairs (exact coordinate reuse
  // is the signature of the pool geometry).
  int shared = 0;
  for (size_t a = 0; a < routes.size(); ++a) {
    for (size_t b = a + 1; b < routes.size(); ++b) {
      for (const auto& pa : routes[a]) {
        for (const auto& pb : routes[b]) {
          if (pa == pb) ++shared;
        }
      }
    }
  }
  EXPECT_GT(shared, 0);
  // Each route still respects its waypoint-count bounds.
  for (const auto& r : routes) {
    EXPECT_GE(r.size(), 5u);
    EXPECT_LE(r.size(), 7u);
  }
  // And traces still generate fine on the shared geometry.
  opt.buses_per_route = 2;
  opt.num_days = 1;
  opt.num_snapshots = 20;
  const TrajectoryDataset d = GenerateBusTraces(opt);
  EXPECT_EQ(d.size(), 8u);
}

TEST(BusGeneratorTest, TimetabledBusesRepeatAcrossDays) {
  BusGeneratorOptions opt;
  opt.num_routes = 1;
  opt.buses_per_route = 1;
  opt.num_days = 2;
  opt.num_snapshots = 30;
  opt.speed_noise = 0.0;
  opt.gps_noise = 0.0;
  opt.timetabled = true;
  const TrajectoryDataset d = GenerateBusTraces(opt);
  ASSERT_EQ(d.size(), 2u);
  // Without noise a timetabled bus repeats its day exactly.
  for (size_t s = 0; s < d[0].size(); ++s) {
    EXPECT_LT(Distance(d[0][s].mean, d[1][s].mean), 1e-9);
  }
}

TEST(PlantedGeneratorTest, EmbedsPatternInCarriers) {
  PlantedPatternOptions opt;
  opt.pattern = {Point2(0.2, 0.2), Point2(0.8, 0.8)};
  opt.num_with_pattern = 5;
  opt.num_background = 2;
  opt.num_snapshots = 6;
  opt.embed_noise = 0.0;
  opt.seed = 11;
  const TrajectoryDataset d = GeneratePlantedPatterns(opt);
  ASSERT_EQ(d.size(), 7u);
  // Each carrier must contain the exact two positions consecutively.
  for (int i = 0; i < opt.num_with_pattern; ++i) {
    bool found = false;
    for (size_t s = 0; s + 1 < d[i].size(); ++s) {
      if (Distance(d[i][s].mean, opt.pattern[0]) < 1e-12 &&
          Distance(d[i][s + 1].mean, opt.pattern[1]) < 1e-12) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "carrier " << i;
  }
}

TEST(PlantedGeneratorTest, BackgroundHasNoExactPattern) {
  PlantedPatternOptions opt;
  opt.pattern = {Point2(0.2, 0.2), Point2(0.8, 0.8)};
  opt.num_with_pattern = 1;
  opt.num_background = 5;
  opt.num_snapshots = 6;
  opt.seed = 12;
  const TrajectoryDataset d = GeneratePlantedPatterns(opt);
  for (size_t i = 1; i < d.size(); ++i) {
    for (const auto& p : d[i]) {
      EXPECT_GT(Distance(p.mean, opt.pattern[0]) +
                    Distance(p.mean, opt.pattern[1]),
                1e-9);
    }
  }
}

}  // namespace
}  // namespace trajpattern
