#include <gtest/gtest.h>

#include <vector>

#include "baseline/brute_force.h"
#include "baseline/match_apriori.h"
#include "baseline/pb_miner.h"
#include "core/miner.h"
#include "core/nm_engine.h"
#include "datagen/uniform_generator.h"

namespace trajpattern {
namespace {

MiningSpace SmallSpace(int n = 3, double delta = 0.15) {
  return MiningSpace(Grid::UnitSquare(n), delta);
}

TrajectoryDataset SmallData(uint64_t seed, int objects = 6,
                            int snapshots = 10) {
  UniformGeneratorOptions opt;
  opt.num_objects = objects;
  opt.num_snapshots = snapshots;
  opt.sigma = 0.02;
  opt.seed = seed;
  return GenerateUniformObjects(opt);
}

void ExpectSameScores(const std::vector<ScoredPattern>& got,
                      const std::vector<ScoredPattern>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].nm, want[i].nm, 1e-9) << "rank " << i;
  }
}

class BaselineSeedTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineSeedTest, ::testing::Range(1, 6));

TEST_P(BaselineSeedTest, PbMatchesBruteForce) {
  const TrajectoryDataset d = SmallData(GetParam());
  const MiningSpace space = SmallSpace();
  NmEngine engine(d, space);
  PbMinerOptions opt;
  opt.k = 6;
  opt.max_length = 3;
  const PbMiningResult pb = MinePbPatterns(engine, opt);
  const auto brute = BruteForceTopK(engine, 6, 3);
  ExpectSameScores(pb.patterns, brute);
  EXPECT_FALSE(pb.stats.hit_prefix_cap);
}

TEST_P(BaselineSeedTest, PbAgreesWithTrajPattern) {
  const TrajectoryDataset d = SmallData(GetParam() + 40);
  const MiningSpace space = SmallSpace();
  NmEngine e1(d, space);
  NmEngine e2(d, space);
  PbMinerOptions pb_opt;
  pb_opt.k = 5;
  pb_opt.max_length = 3;
  const PbMiningResult pb = MinePbPatterns(e1, pb_opt);
  MinerOptions tp_opt;
  tp_opt.k = 5;
  tp_opt.max_pattern_length = 3;
  const MiningResult tp = MineTrajPatterns(e2, tp_opt);
  ExpectSameScores(pb.patterns, tp.patterns);
}

TEST_P(BaselineSeedTest, MatchAprioriMatchesBruteForce) {
  const TrajectoryDataset d = SmallData(GetParam() + 80);
  const MiningSpace space = SmallSpace();
  NmEngine engine(d, space);
  MatchMinerOptions opt;
  opt.k = 6;
  opt.max_length = 3;
  const MatchMiningResult res = MineMatchPatterns(engine, opt);
  const auto brute = BruteForceTopKByMatch(engine, 6, 3);
  ExpectSameScores(res.patterns, brute);
}

TEST_P(BaselineSeedTest, MatchAprioriWithMinLength) {
  const TrajectoryDataset d = SmallData(GetParam() + 120, 5, 8);
  const MiningSpace space = SmallSpace();
  NmEngine engine(d, space);
  MatchMinerOptions opt;
  opt.k = 4;
  opt.min_length = 2;
  opt.max_length = 3;
  const MatchMiningResult res = MineMatchPatterns(engine, opt);
  const auto brute = BruteForceTopKByMatch(engine, 4, 3, 2);
  ExpectSameScores(res.patterns, brute);
  for (const auto& sp : res.patterns) {
    EXPECT_GE(sp.pattern.length(), 2u);
  }
}

TEST(PbMinerTest, PrefixCapAborts) {
  const TrajectoryDataset d = SmallData(7, 8, 12);
  const MiningSpace space = SmallSpace(4, 0.12);
  NmEngine engine(d, space);
  PbMinerOptions opt;
  opt.k = 10;
  opt.max_length = 4;
  opt.max_expanded_prefixes = 3;
  const PbMiningResult res = MinePbPatterns(engine, opt);
  EXPECT_TRUE(res.stats.hit_prefix_cap);
  EXPECT_LE(res.stats.prefixes_expanded, 3);
}

TEST(PbMinerTest, TracksPeakLivePrefixes) {
  const TrajectoryDataset d = SmallData(9);
  const MiningSpace space = SmallSpace();
  NmEngine engine(d, space);
  PbMinerOptions opt;
  opt.k = 4;
  opt.max_length = 2;
  const PbMiningResult res = MinePbPatterns(engine, opt);
  EXPECT_GT(res.stats.peak_live_prefixes, 0u);
  EXPECT_GT(res.stats.candidates_evaluated, 0);
}

TEST(BruteForceTest, RespectsMinAndMaxLength) {
  const TrajectoryDataset d = SmallData(11, 4, 6);
  const MiningSpace space = SmallSpace();
  NmEngine engine(d, space);
  const auto res = BruteForceTopK(engine, 100, 2, 2);
  for (const auto& sp : res) {
    EXPECT_EQ(sp.pattern.length(), 2u);
  }
}

TEST(BruteForceTest, ScoresAreSortedDescending) {
  const TrajectoryDataset d = SmallData(13, 4, 6);
  const MiningSpace space = SmallSpace();
  NmEngine engine(d, space);
  const auto res = BruteForceTopK(engine, 20, 2);
  for (size_t i = 1; i < res.size(); ++i) {
    EXPECT_GE(res[i - 1].nm, res[i].nm);
  }
}

TEST(PbMinerTest, RespectsMaxLength) {
  const TrajectoryDataset d = SmallData(17, 4, 8);
  const MiningSpace space = SmallSpace();
  NmEngine engine(d, space);
  PbMinerOptions opt;
  opt.k = 20;
  opt.max_length = 2;
  const PbMiningResult res = MinePbPatterns(engine, opt);
  for (const auto& sp : res.patterns) {
    EXPECT_LE(sp.pattern.length(), 2u);
  }
}

TEST(MatchMinerTest, MinMatchThresholdPrunesAnswer) {
  const TrajectoryDataset d = SmallData(19, 5, 8);
  const MiningSpace space = SmallSpace();
  NmEngine engine(d, space);
  MatchMinerOptions opt;
  opt.k = 50;
  opt.max_length = 2;
  opt.min_match = 0.5;
  const MatchMiningResult res = MineMatchPatterns(engine, opt);
  for (const auto& sp : res.patterns) {
    EXPECT_GE(sp.nm, 0.5) << sp.pattern.ToString();
  }
  // And the thresholded answer is a prefix of the unthresholded one.
  opt.min_match = 0.0;
  const MatchMiningResult full = MineMatchPatterns(engine, opt);
  ASSERT_LE(res.patterns.size(), full.patterns.size());
  for (size_t i = 0; i < res.patterns.size(); ++i) {
    EXPECT_NEAR(res.patterns[i].nm, full.patterns[i].nm, 1e-12);
  }
}

TEST(MatchMinerTest, FrontierCapIsReportedAndBoundsWork) {
  const TrajectoryDataset d = SmallData(23, 6, 10);
  const MiningSpace space = SmallSpace();
  NmEngine engine(d, space);
  MatchMinerOptions opt;
  opt.k = 5;
  opt.max_length = 3;
  opt.frontier_cap = 2;
  const MatchMiningResult capped = MineMatchPatterns(engine, opt);
  EXPECT_TRUE(capped.stats.hit_frontier_cap);
  opt.frontier_cap = 0;
  const MatchMiningResult exact = MineMatchPatterns(engine, opt);
  EXPECT_FALSE(exact.stats.hit_frontier_cap);
  EXPECT_LT(capped.stats.candidates_evaluated,
            exact.stats.candidates_evaluated);
  // The capped run's answers are a subset of real patterns: each one's
  // match value must be genuine (re-scoring agrees).
  for (const auto& sp : capped.patterns) {
    EXPECT_NEAR(engine.MatchTotal(sp.pattern), sp.nm, 1e-12);
  }
}

TEST(MatchMinerTest, MatchValuesNonNegative) {
  const TrajectoryDataset d = SmallData(15, 4, 6);
  const MiningSpace space = SmallSpace();
  NmEngine engine(d, space);
  MatchMinerOptions opt;
  opt.k = 10;
  opt.max_length = 3;
  const MatchMiningResult res = MineMatchPatterns(engine, opt);
  for (const auto& sp : res.patterns) {
    EXPECT_GE(sp.nm, 0.0);  // match is a probability sum
    EXPECT_LE(sp.nm, static_cast<double>(d.size()) + 1e-9);
  }
}

// §6.1's headline contrast: with the match measure long patterns are
// penalized (match decays with length), so the average length of top-k
// match patterns is at most that of top-k NM patterns on the same data.
TEST(MatchVsNmTest, NmPrefersLongerPatterns) {
  const TrajectoryDataset d = SmallData(21, 8, 12);
  const MiningSpace space = SmallSpace(3, 0.2);
  NmEngine engine(d, space);
  constexpr int kK = 10;
  MatchMinerOptions mopt;
  mopt.k = kK;
  mopt.max_length = 4;
  const auto match_res = MineMatchPatterns(engine, mopt);
  MinerOptions nopt;
  nopt.k = kK;
  nopt.max_pattern_length = 4;
  const auto nm_res = MineTrajPatterns(engine, nopt);
  auto avg_len = [](const std::vector<ScoredPattern>& ps) {
    double sum = 0.0;
    for (const auto& sp : ps) sum += static_cast<double>(sp.pattern.length());
    return sum / static_cast<double>(ps.size());
  };
  EXPECT_LE(avg_len(match_res.patterns), avg_len(nm_res.patterns) + 1e-9);
}

}  // namespace
}  // namespace trajpattern
