#include <gtest/gtest.h>

#include <cmath>

#include "geometry/bounding_box.h"
#include "geometry/grid.h"
#include "geometry/point.h"

namespace trajpattern {
namespace {

TEST(Point2Test, Arithmetic) {
  const Point2 a(1.0, 2.0);
  const Point2 b(0.5, -1.0);
  EXPECT_EQ(a + b, Point2(1.5, 1.0));
  EXPECT_EQ(a - b, Point2(0.5, 3.0));
  EXPECT_EQ(a * 2.0, Point2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Point2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Point2(0.5, 1.0));
}

TEST(Point2Test, CompoundAssignment) {
  Point2 p(1.0, 1.0);
  p += Point2(2.0, 3.0);
  EXPECT_EQ(p, Point2(3.0, 4.0));
  p -= Point2(1.0, 1.0);
  EXPECT_EQ(p, Point2(2.0, 3.0));
  p *= 2.0;
  EXPECT_EQ(p, Point2(4.0, 6.0));
}

TEST(Point2Test, Distances) {
  const Point2 a(0.0, 0.0);
  const Point2 b(3.0, 4.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(ChebyshevDistance(a, b), 4.0);
  EXPECT_DOUBLE_EQ(Norm(b), 5.0);
}

TEST(Point2Test, DistanceIsSymmetric) {
  const Point2 a(0.7, -0.3);
  const Point2 b(-1.2, 2.5);
  EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
  EXPECT_DOUBLE_EQ(ChebyshevDistance(a, b), ChebyshevDistance(b, a));
}

TEST(BoundingBoxTest, EmptyAndExtend) {
  BoundingBox box;
  EXPECT_TRUE(box.empty());
  box.Extend(Point2(1.0, 2.0));
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.min(), Point2(1.0, 2.0));
  EXPECT_EQ(box.max(), Point2(1.0, 2.0));
  box.Extend(Point2(-1.0, 5.0));
  EXPECT_EQ(box.min(), Point2(-1.0, 2.0));
  EXPECT_EQ(box.max(), Point2(1.0, 5.0));
  EXPECT_DOUBLE_EQ(box.width(), 2.0);
  EXPECT_DOUBLE_EQ(box.height(), 3.0);
}

TEST(BoundingBoxTest, ContainsAndClamp) {
  const BoundingBox box(Point2(0.0, 0.0), Point2(1.0, 1.0));
  EXPECT_TRUE(box.Contains(Point2(0.5, 0.5)));
  EXPECT_TRUE(box.Contains(Point2(0.0, 1.0)));  // boundary
  EXPECT_FALSE(box.Contains(Point2(1.1, 0.5)));
  EXPECT_EQ(box.Clamp(Point2(2.0, -1.0)), Point2(1.0, 0.0));
  EXPECT_EQ(box.Clamp(Point2(0.3, 0.4)), Point2(0.3, 0.4));
}

TEST(BoundingBoxTest, InflateAndCenter) {
  BoundingBox box(Point2(0.0, 0.0), Point2(2.0, 2.0));
  EXPECT_EQ(box.center(), Point2(1.0, 1.0));
  box.Inflate(0.5);
  EXPECT_EQ(box.min(), Point2(-0.5, -0.5));
  EXPECT_EQ(box.max(), Point2(2.5, 2.5));
}

TEST(GridTest, BasicLayout) {
  const Grid grid = Grid::UnitSquare(4);
  EXPECT_EQ(grid.num_cells(), 16);
  EXPECT_DOUBLE_EQ(grid.cell_width(), 0.25);
  EXPECT_DOUBLE_EQ(grid.cell_height(), 0.25);
  EXPECT_EQ(grid.At(0, 0), 0);
  EXPECT_EQ(grid.At(3, 3), 15);
  EXPECT_EQ(grid.ColumnOf(5), 1);
  EXPECT_EQ(grid.RowOf(5), 1);
}

TEST(GridTest, CellOfRoundTrip) {
  const Grid grid = Grid::UnitSquare(8);
  for (CellId id = 0; id < grid.num_cells(); ++id) {
    EXPECT_EQ(grid.CellOf(grid.CenterOf(id)), id);
  }
}

TEST(GridTest, CellOfClampsOutside) {
  const Grid grid = Grid::UnitSquare(4);
  EXPECT_EQ(grid.CellOf(Point2(-0.3, -0.3)), grid.At(0, 0));
  EXPECT_EQ(grid.CellOf(Point2(1.7, 1.7)), grid.At(3, 3));
  EXPECT_EQ(grid.CellOf(Point2(-0.3, 1.7)), grid.At(0, 3));
}

TEST(GridTest, NonSquareGrid) {
  const Grid grid(BoundingBox(Point2(0.0, 0.0), Point2(2.0, 1.0)), 4, 2);
  EXPECT_EQ(grid.num_cells(), 8);
  EXPECT_DOUBLE_EQ(grid.cell_width(), 0.5);
  EXPECT_DOUBLE_EQ(grid.cell_height(), 0.5);
  EXPECT_EQ(grid.CellOf(Point2(1.9, 0.9)), grid.At(3, 1));
}

TEST(GridTest, CenterDistance) {
  const Grid grid = Grid::UnitSquare(4);
  EXPECT_DOUBLE_EQ(grid.CenterDistance(grid.At(0, 0), grid.At(1, 0)), 0.25);
  EXPECT_DOUBLE_EQ(grid.CenterDistance(grid.At(0, 0), grid.At(0, 2)), 0.5);
  EXPECT_NEAR(grid.CenterDistance(grid.At(0, 0), grid.At(1, 1)),
              0.25 * std::sqrt(2.0), 1e-12);
}

TEST(GridTest, CellsWithinRadius) {
  const Grid grid = Grid::UnitSquare(8);
  const Point2 center = grid.CenterOf(grid.At(4, 4));
  // Radius between the axis-neighbor pitch (0.125) and the diagonal
  // pitch (0.125 * sqrt(2) ~ 0.177): the cell itself plus the four axis
  // neighbors.
  const auto cells = grid.CellsWithin(center, 0.13);
  EXPECT_EQ(cells.size(), 5u);
  for (CellId c : cells) {
    EXPECT_LE(Distance(grid.CenterOf(c), center), 0.13);
  }
}

TEST(GridTest, CellsWithinCoversWholeGrid) {
  const Grid grid = Grid::UnitSquare(4);
  const auto cells = grid.CellsWithin(Point2(0.5, 0.5), 10.0);
  EXPECT_EQ(static_cast<int>(cells.size()), grid.num_cells());
}

TEST(GridTest, CellsWithinEmptyForFarPoint) {
  const Grid grid = Grid::UnitSquare(4);
  const auto cells = grid.CellsWithin(Point2(5.0, 5.0), 0.1);
  EXPECT_TRUE(cells.empty());
}

TEST(GridTest, CellEdgesBelongToTheHigherCell) {
  // Cells are half-open [lo, hi): a point exactly on a shared edge lands
  // in the cell whose low edge it is.  The box's own max edge is the one
  // exception — there is no higher cell, so it clamps inward.
  const Grid grid = Grid::UnitSquare(4);
  EXPECT_EQ(grid.CellOf(Point2(0.25, 0.0)), grid.At(1, 0));
  EXPECT_EQ(grid.CellOf(Point2(0.0, 0.25)), grid.At(0, 1));
  EXPECT_EQ(grid.CellOf(Point2(0.25, 0.25)), grid.At(1, 1));
  EXPECT_EQ(grid.CellOf(Point2(0.5, 0.75)), grid.At(2, 3));
  // Box corners and edges.
  EXPECT_EQ(grid.CellOf(Point2(0.0, 0.0)), grid.At(0, 0));
  EXPECT_EQ(grid.CellOf(Point2(1.0, 1.0)), grid.At(3, 3));
  EXPECT_EQ(grid.CellOf(Point2(1.0, 0.0)), grid.At(3, 0));
  EXPECT_EQ(grid.CellOf(Point2(0.0, 1.0)), grid.At(0, 3));
}

TEST(GridTest, CellOfJustInsideAnEdgeStaysInTheLowerCell) {
  const Grid grid = Grid::UnitSquare(4);
  const double just_below = std::nextafter(0.25, 0.0);
  EXPECT_EQ(grid.CellOf(Point2(just_below, just_below)), grid.At(0, 0));
  EXPECT_EQ(grid.CellOf(Point2(std::nextafter(1.0, 0.0), 0.1)),
            grid.At(3, 0));
}

TEST(GridTest, CellOfNonFinitePointsIsDefinedAndClamped) {
  // Casting NaN (or an out-of-int-range double) to int is UB; CellOf
  // must clamp in double space instead.  NaN clamps like -inf.
  const Grid grid = Grid::UnitSquare(4);
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(grid.CellOf(Point2(nan, 0.6)), grid.At(0, 2));
  EXPECT_EQ(grid.CellOf(Point2(0.6, nan)), grid.At(2, 0));
  EXPECT_EQ(grid.CellOf(Point2(nan, nan)), grid.At(0, 0));
  EXPECT_EQ(grid.CellOf(Point2(inf, inf)), grid.At(3, 3));
  EXPECT_EQ(grid.CellOf(Point2(-inf, -inf)), grid.At(0, 0));
  // Finite but far beyond the int range once divided by the cell pitch.
  EXPECT_EQ(grid.CellOf(Point2(1e300, -1e300)), grid.At(3, 0));
}

TEST(GridTest, CellsWithinHugeRadiusIsWholeGridNotUndefined) {
  // A knows-nothing sigma hands CellsWithin a radius whose scaled value
  // exceeds the int range; the scan bounds must clamp, not overflow.
  const Grid grid = Grid::UnitSquare(4);
  const auto cells = grid.CellsWithin(Point2(0.5, 0.5), 3e18);
  EXPECT_EQ(static_cast<int>(cells.size()), grid.num_cells());
}

}  // namespace
}  // namespace trajpattern
