#ifndef TRAJPATTERN_TESTS_PROM_LINT_H_
#define TRAJPATTERN_TESTS_PROM_LINT_H_

// promtool-style lint for Prometheus text exposition format, reimplemented
// as a test helper (no external binaries in CI).  Checks the subset of
// `promtool check metrics` rules our exporter can violate:
//
//   - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names
//     [a-zA-Z_][a-zA-Z0-9_]*
//   - every sample's metric has exactly one preceding # TYPE line, and
//     the declared type matches the sample shape (histogram samples only
//     as <name>_bucket/_sum/_count)
//   - sample values parse as floats (NaN/+Inf/-Inf allowed; bare "inf"
//     or "nan" from a careless printf are not)
//   - no duplicate series (same name + label set)
//   - histograms: le labels strictly ascending, bucket counts cumulative
//     (non-decreasing), an le="+Inf" bucket present and equal to _count
//
// Returns the list of violations; empty means the text lints clean.

#include <cctype>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace trajpattern::test {

inline bool PromValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

inline bool PromValidLabelName(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

inline bool PromValidValue(const std::string& v) {
  if (v.empty()) return false;
  if (v == "NaN" || v == "+Inf" || v == "-Inf" || v == "Inf") return true;
  char* end = nullptr;
  std::strtod(v.c_str(), &end);
  return end != nullptr && *end == '\0';
}

inline std::vector<std::string> PromLint(const std::string& text) {
  std::vector<std::string> issues;
  // name -> declared type; name -> seen series (name + sorted labels).
  std::map<std::string, std::string> types;
  std::set<std::string> series_seen;
  // histogram base name -> ordered (le, count) pairs and _count value.
  struct HistState {
    std::vector<std::pair<std::string, double>> buckets;
    double count = -1.0;
    bool has_count = false;
  };
  std::map<std::string, HistState> hists;

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto complain = [&](const std::string& what) {
      issues.push_back("line " + std::to_string(lineno) + ": " + what +
                       " [" + line + "]");
    };
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, name, type;
      ls >> hash >> kind >> name >> type;
      if (kind == "TYPE") {
        if (!PromValidMetricName(name)) complain("bad metric name in TYPE");
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          complain("unknown TYPE '" + type + "'");
        }
        if (types.count(name) > 0) complain("duplicate TYPE for " + name);
        types[name] = type;
      }
      continue;  // other comments are free-form
    }

    // Sample: name[{labels}] value [timestamp]
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) {
      complain("sample with no value");
      continue;
    }
    const std::string name = line.substr(0, name_end);
    if (!PromValidMetricName(name)) complain("bad metric name");

    std::string labels;
    size_t value_begin = name_end;
    if (line[name_end] == '{') {
      const size_t close = line.find('}', name_end);
      if (close == std::string::npos) {
        complain("unterminated label set");
        continue;
      }
      labels = line.substr(name_end + 1, close - name_end - 1);
      value_begin = close + 1;
    }
    while (value_begin < line.size() && line[value_begin] == ' ') {
      ++value_begin;
    }
    const size_t value_end = line.find(' ', value_begin);
    const std::string value =
        line.substr(value_begin, value_end == std::string::npos
                                     ? std::string::npos
                                     : value_end - value_begin);
    if (!PromValidValue(value)) complain("bad sample value '" + value + "'");

    // Label syntax: k="v" pairs, comma-separated.
    std::string le_value;
    if (!labels.empty()) {
      std::string rest = labels;
      while (!rest.empty()) {
        const size_t eq = rest.find('=');
        if (eq == std::string::npos || eq + 1 >= rest.size() ||
            rest[eq + 1] != '"') {
          complain("malformed label in '" + labels + "'");
          break;
        }
        const std::string lname = rest.substr(0, eq);
        if (!PromValidLabelName(lname)) complain("bad label name " + lname);
        const size_t vclose = rest.find('"', eq + 2);
        if (vclose == std::string::npos) {
          complain("unterminated label value");
          break;
        }
        const std::string lvalue = rest.substr(eq + 2, vclose - eq - 2);
        if (lname == "le") le_value = lvalue;
        if (vclose + 1 < rest.size() && rest[vclose + 1] == ',') {
          rest = rest.substr(vclose + 2);
        } else {
          rest = rest.substr(vclose + 1);
        }
      }
    }

    const std::string series = name + "{" + labels + "}";
    if (!series_seen.insert(series).second) {
      complain("duplicate series " + series);
    }

    // TYPE resolution: histogram samples carry the base name's suffix.
    std::string base = name;
    bool suffix = false;
    for (const char* s : {"_bucket", "_sum", "_count"}) {
      const std::string sfx(s);
      if (base.size() > sfx.size() &&
          base.compare(base.size() - sfx.size(), sfx.size(), sfx) == 0) {
        const std::string candidate =
            base.substr(0, base.size() - sfx.size());
        if (types.count(candidate) > 0 &&
            types[candidate] == "histogram") {
          base = candidate;
          suffix = true;
          break;
        }
      }
    }
    if (types.count(base) == 0) {
      complain("sample for " + name + " with no preceding TYPE");
      continue;
    }
    if (types[base] == "histogram" && !suffix) {
      complain("histogram " + base + " exposed without _bucket/_sum/_count");
    }
    if (types[base] == "histogram" && suffix) {
      HistState& h = hists[base];
      const double v = value == "+Inf" ? 0.0 : std::strtod(value.c_str(), nullptr);
      if (name == base + "_bucket") {
        if (le_value.empty()) {
          complain("histogram bucket without le label");
        } else {
          h.buckets.emplace_back(le_value, std::strtod(value.c_str(), nullptr));
        }
      } else if (name == base + "_count") {
        h.count = v;
        h.has_count = true;
      }
    }
  }

  // Histogram structural checks.
  for (const auto& [base, h] : hists) {
    if (h.buckets.empty()) {
      issues.push_back("histogram " + base + " has no buckets");
      continue;
    }
    double prev_le = -std::numeric_limits<double>::infinity();
    double prev_count = -1.0;
    bool has_inf = false;
    for (const auto& [le, count] : h.buckets) {
      if (le == "+Inf") {
        has_inf = true;
        if (h.has_count && count != h.count) {
          issues.push_back("histogram " + base +
                           ": +Inf bucket != _count");
        }
      } else {
        const double le_num = std::strtod(le.c_str(), nullptr);
        if (le_num <= prev_le) {
          issues.push_back("histogram " + base +
                           ": le bounds not strictly ascending at le=" + le);
        }
        prev_le = le_num;
      }
      if (count < prev_count) {
        issues.push_back("histogram " + base +
                         ": bucket counts not cumulative at le=" + le);
      }
      prev_count = count;
    }
    if (!has_inf) {
      issues.push_back("histogram " + base + " missing le=\"+Inf\" bucket");
    }
    if (!h.has_count) {
      issues.push_back("histogram " + base + " missing _count");
    }
  }
  return issues;
}

}  // namespace trajpattern::test

#endif  // TRAJPATTERN_TESTS_PROM_LINT_H_
