#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "index/grid_index.h"
#include "index/rtree.h"
#include "prob/rng.h"

namespace trajpattern {
namespace {

TEST(GridIndexTest, UpsertLookupRemove) {
  GridIndex index(Grid::UnitSquare(8));
  index.Upsert(1, Point2(0.1, 0.1));
  index.Upsert(2, Point2(0.9, 0.9));
  EXPECT_EQ(index.size(), 2u);
  Point2 p;
  ASSERT_TRUE(index.Lookup(1, &p));
  EXPECT_EQ(p, Point2(0.1, 0.1));
  // Move object 1 across cells.
  index.Upsert(1, Point2(0.8, 0.8));
  ASSERT_TRUE(index.Lookup(1, &p));
  EXPECT_EQ(p, Point2(0.8, 0.8));
  EXPECT_EQ(index.size(), 2u);
  EXPECT_TRUE(index.Remove(1));
  EXPECT_FALSE(index.Remove(1));
  EXPECT_FALSE(index.Lookup(1, &p));
  EXPECT_EQ(index.size(), 1u);
}

TEST(GridIndexTest, QueryBoxMatchesLinearScan) {
  Rng rng(5);
  GridIndex index(Grid::UnitSquare(10));
  std::vector<Point2> points;
  for (int i = 0; i < 200; ++i) {
    points.emplace_back(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0));
    index.Upsert(i, points.back());
  }
  for (int trial = 0; trial < 20; ++trial) {
    Point2 a(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0));
    Point2 b(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0));
    const BoundingBox box(Point2(std::min(a.x, b.x), std::min(a.y, b.y)),
                          Point2(std::max(a.x, b.x), std::max(a.y, b.y)));
    std::vector<GridIndex::ObjectId> expected;
    for (int i = 0; i < 200; ++i) {
      if (box.Contains(points[i])) expected.push_back(i);
    }
    EXPECT_EQ(index.QueryBox(box), expected);
  }
}

TEST(GridIndexTest, QueryRadiusMatchesLinearScan) {
  Rng rng(7);
  GridIndex index(Grid::UnitSquare(10));
  std::vector<Point2> points;
  for (int i = 0; i < 150; ++i) {
    points.emplace_back(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0));
    index.Upsert(i, points.back());
  }
  for (int trial = 0; trial < 20; ++trial) {
    const Point2 c(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0));
    const double r = rng.Uniform(0.02, 0.4);
    std::vector<GridIndex::ObjectId> expected;
    for (int i = 0; i < 150; ++i) {
      if (Distance(points[i], c) <= r) expected.push_back(i);
    }
    EXPECT_EQ(index.QueryRadius(c, r), expected);
  }
}

TEST(GridIndexTest, NearestNeighborsExact) {
  Rng rng(9);
  GridIndex index(Grid::UnitSquare(10));
  std::vector<Point2> points;
  for (int i = 0; i < 100; ++i) {
    points.emplace_back(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0));
    index.Upsert(i, points.back());
  }
  for (int trial = 0; trial < 10; ++trial) {
    const Point2 c(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0));
    const int k = rng.UniformInt(1, 12);
    std::vector<int> expected(100);
    for (int i = 0; i < 100; ++i) expected[i] = i;
    std::sort(expected.begin(), expected.end(), [&](int a, int b) {
      const double da = SquaredDistance(points[a], c);
      const double db = SquaredDistance(points[b], c);
      if (da != db) return da < db;
      return a < b;
    });
    expected.resize(k);
    const auto got = index.NearestNeighbors(c, k);
    ASSERT_EQ(got.size(), static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) {
      EXPECT_EQ(got[i], expected[i]) << "trial " << trial << " rank " << i;
    }
  }
}

TEST(GridIndexTest, EdgeAndOutsidePointsBucketLikeGridCellOf) {
  // The index's bucket assignment must agree with Grid::CellOf for points
  // exactly on shared cell edges and for points outside the box — an
  // object bucketed in one cell but queried via another would vanish from
  // radius/box queries.
  const Grid grid = Grid::UnitSquare(4);
  GridIndex index(grid);
  const std::vector<Point2> tricky = {
      Point2(0.25, 0.25),   // interior shared corner
      Point2(0.25, 0.1),    // vertical shared edge
      Point2(0.1, 0.75),    // horizontal shared edge
      Point2(0.0, 0.0),     // box min corner
      Point2(1.0, 1.0),     // box max corner
      Point2(1.0, 0.3),     // box max edge
      Point2(-0.5, 0.5),    // outside, left
      Point2(0.5, 2.0),     // outside, above
      Point2(-3.0, -3.0),   // outside, both
  };
  for (size_t i = 0; i < tricky.size(); ++i) {
    index.Upsert(static_cast<GridIndex::ObjectId>(i), tricky[i]);
  }
  EXPECT_EQ(index.size(), tricky.size());
  for (size_t i = 0; i < tricky.size(); ++i) {
    const auto id = static_cast<GridIndex::ObjectId>(i);
    // A zero-radius query centered on the point must find it: the query
    // walks the buckets Grid::CellOf implies, so this fails if Upsert
    // used a different assignment.
    const auto hits = index.QueryRadius(tricky[i], 0.0);
    EXPECT_TRUE(std::find(hits.begin(), hits.end(), id) != hits.end())
        << "point " << i << " not found at its own position";
    // Moving the object out of a tricky cell and back must not strand a
    // stale bucket entry.
    index.Upsert(id, Point2(0.6, 0.6));
    index.Upsert(id, tricky[i]);
    Point2 p;
    ASSERT_TRUE(index.Lookup(id, &p));
    EXPECT_EQ(p, tricky[i]);
  }
  EXPECT_EQ(index.size(), tricky.size());
}

TEST(GridIndexTest, QueriesFindObjectsClampedFromOutsideTheBox) {
  const Grid grid = Grid::UnitSquare(4);
  GridIndex index(grid);
  index.Upsert(1, Point2(1.4, 1.4));  // clamps into cell (3, 3)
  index.Upsert(2, Point2(-0.2, 0.5));
  // Radius queries measure true Euclidean distance to the stored point,
  // not to its clamped cell, so a query around the raw position wins.
  const auto near1 = index.QueryRadius(Point2(1.4, 1.4), 0.01);
  EXPECT_EQ(near1, std::vector<GridIndex::ObjectId>{1});
  const auto near2 = index.QueryRadius(Point2(-0.2, 0.5), 0.01);
  EXPECT_EQ(near2, std::vector<GridIndex::ObjectId>{2});
  // And a box query over the whole plane sees both.
  const auto all =
      index.QueryBox(BoundingBox(Point2(-10.0, -10.0), Point2(10.0, 10.0)));
  EXPECT_EQ(all, (std::vector<GridIndex::ObjectId>{1, 2}));
}

TEST(GridIndexTest, NearestNeighborsMoreThanStored) {
  GridIndex index(Grid::UnitSquare(4));
  index.Upsert(1, Point2(0.2, 0.2));
  index.Upsert(2, Point2(0.8, 0.8));
  const auto got = index.NearestNeighbors(Point2(0.0, 0.0), 10);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 2);
}

TEST(RTreeTest, InsertAndQueryPoint) {
  RTree tree(4);
  tree.Insert(1, Point2(0.5, 0.5));
  tree.Insert(2, Point2(0.1, 0.9));
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree.QueryPoint(Point2(0.5, 0.5)),
            std::vector<RTree::EntryId>{1});
  EXPECT_TRUE(tree.QueryPoint(Point2(0.3, 0.3)).empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, SplitsKeepInvariants) {
  RTree tree(4);
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    tree.Insert(i, Point2(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)));
    if (i % 50 == 0) {
      EXPECT_TRUE(tree.CheckInvariants()) << "after " << i;
    }
  }
  EXPECT_EQ(tree.size(), 300u);
  EXPECT_GT(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, QueryIntersectsMatchesLinearScan) {
  RTree tree(6);
  Rng rng(13);
  std::vector<BoundingBox> boxes;
  for (int i = 0; i < 200; ++i) {
    const Point2 min(rng.Uniform(0.0, 0.9), rng.Uniform(0.0, 0.9));
    const BoundingBox box(
        min, min + Point2(rng.Uniform(0.0, 0.1), rng.Uniform(0.0, 0.1)));
    boxes.push_back(box);
    tree.Insert(i, box);
  }
  for (int trial = 0; trial < 25; ++trial) {
    const Point2 min(rng.Uniform(0.0, 0.8), rng.Uniform(0.0, 0.8));
    const BoundingBox query(
        min, min + Point2(rng.Uniform(0.05, 0.3), rng.Uniform(0.05, 0.3)));
    std::vector<RTree::EntryId> expected;
    for (int i = 0; i < 200; ++i) {
      if (boxes[i].Intersects(query)) expected.push_back(i);
    }
    EXPECT_EQ(tree.QueryIntersects(query), expected) << "trial " << trial;
  }
}

TEST(RTreeTest, RemoveMaintainsCorrectness) {
  RTree tree(4);
  Rng rng(17);
  std::vector<Point2> points;
  for (int i = 0; i < 120; ++i) {
    points.emplace_back(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0));
    tree.Insert(i, points.back());
  }
  // Remove every third entry.
  std::set<int> removed;
  for (int i = 0; i < 120; i += 3) {
    EXPECT_TRUE(tree.Remove(i, BoundingBox(points[i], points[i])));
    removed.insert(i);
  }
  EXPECT_EQ(tree.size(), 80u);
  EXPECT_TRUE(tree.CheckInvariants());
  // Removed entries are gone; kept entries still found.
  for (int i = 0; i < 120; ++i) {
    const auto hits = tree.QueryPoint(points[i]);
    const bool found = std::find(hits.begin(), hits.end(), i) != hits.end();
    EXPECT_EQ(found, removed.count(i) == 0) << i;
  }
  // Removing a non-existent entry fails.
  EXPECT_FALSE(tree.Remove(0, BoundingBox(points[0], points[0])));
}

TEST(RTreeTest, RemoveAllThenReinsert) {
  RTree tree(4);
  for (int i = 0; i < 30; ++i) {
    tree.Insert(i, Point2(0.03 * i, 0.03 * i));
  }
  for (int i = 0; i < 30; ++i) {
    const Point2 p(0.03 * i, 0.03 * i);
    EXPECT_TRUE(tree.Remove(i, BoundingBox(p, p)));
  }
  EXPECT_EQ(tree.size(), 0u);
  tree.Insert(99, Point2(0.5, 0.5));
  EXPECT_EQ(tree.QueryPoint(Point2(0.5, 0.5)),
            std::vector<RTree::EntryId>{99});
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BoundingBoxSetOpsTest, IntersectsUnionArea) {
  const BoundingBox a(Point2(0.0, 0.0), Point2(1.0, 1.0));
  const BoundingBox b(Point2(0.5, 0.5), Point2(2.0, 2.0));
  const BoundingBox c(Point2(1.5, 1.5), Point2(1.8, 1.8));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(b.Intersects(c));
  EXPECT_TRUE(b.ContainsBox(c));
  EXPECT_FALSE(a.ContainsBox(b));
  const BoundingBox u = BoundingBox::Union(a, c);
  EXPECT_EQ(u.min(), Point2(0.0, 0.0));
  EXPECT_EQ(u.max(), Point2(1.8, 1.8));
  EXPECT_DOUBLE_EQ(a.Area(), 1.0);
  EXPECT_DOUBLE_EQ(BoundingBox().Area(), 0.0);
}

}  // namespace
}  // namespace trajpattern
