#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/miner.h"
#include "core/nm_engine.h"
#include "datagen/uniform_generator.h"
#include "prob/rng.h"
#include "trajectory/trajectory.h"

namespace trajpattern {
namespace {

MiningSpace SmallSpace(int n = 4, double delta = 0.1) {
  return MiningSpace(Grid::UnitSquare(n), delta);
}

/// Trajectories that visit A, then a position drawn uniformly from the
/// whole space, then B — the motif (A, *, B) with an unpredictable
/// middle.
TrajectoryDataset GappedMotifData(int count, uint64_t seed) {
  Rng rng(seed);
  const Point2 a(0.125, 0.125);
  const Point2 b(0.875, 0.875);
  TrajectoryDataset d;
  for (int i = 0; i < count; ++i) {
    Rng local = rng.Fork();
    Trajectory t("m" + std::to_string(i));
    // Two noise snapshots, the motif, two noise snapshots.
    auto noise = [&]() {
      return Point2(local.Uniform(0.0, 1.0), local.Uniform(0.0, 1.0));
    };
    t.Append(noise(), 0.01);
    t.Append(noise(), 0.01);
    t.Append(a, 0.01);
    t.Append(noise(), 0.01);  // the wildcard position
    t.Append(b, 0.01);
    t.Append(noise(), 0.01);
    d.Add(std::move(t));
  }
  return d;
}

TEST(WildcardNmTest, NormalizesBySpecifiedPositions) {
  const MiningSpace space = SmallSpace();
  Trajectory t("t");
  t.Append(Point2(0.125, 0.125), 0.03);
  t.Append(Point2(0.5, 0.5), 0.03);
  t.Append(Point2(0.875, 0.875), 0.03);
  TrajectoryDataset d;
  d.Add(std::move(t));
  NmEngine engine(d, space);
  const CellId a = space.grid.CellOf(Point2(0.125, 0.125));
  const CellId b = space.grid.CellOf(Point2(0.875, 0.875));
  const Pattern starred(std::vector<CellId>{a, kWildcardCell, b});
  const double la = space.LogProb(d[0][0], a);
  const double lb = space.LogProb(d[0][2], b);
  // Only one window; mean over the TWO specified positions.
  EXPECT_NEAR(engine.NmTotal(starred), (la + lb) / 2.0, 1e-12);
  EXPECT_EQ(starred.SpecifiedCount(), 2u);
}

TEST(WildcardNmTest, StarPaddingCannotInflateScores) {
  const UniformGeneratorOptions gopt{.num_objects = 6,
                                     .num_snapshots = 10,
                                     .seed = 3};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space = SmallSpace();
  NmEngine engine(d, space);
  const auto cells = engine.TouchedCells();
  ASSERT_GE(cells.size(), 2u);
  const Pattern starred(
      std::vector<CellId>{cells[0], kWildcardCell, cells[1]});
  // Normalizing by specified positions keeps min-max intact: the starred
  // pattern cannot beat both of its specified halves.
  EXPECT_LE(engine.NmTotal(starred),
            std::max(engine.NmTotal(Pattern(cells[0])),
                     engine.NmTotal(Pattern(cells[1]))) +
                1e-12);
  // A trailing wildcard cannot raise a singular's score.
  const Pattern single(cells[0]);
  const Pattern single_starred(
      std::vector<CellId>{cells[0], kWildcardCell});
  EXPECT_LE(engine.NmTotal(single_starred), engine.NmTotal(single) + 1e-12);
}

TEST(WildcardNmTest, MinMaxHoldsAcrossWildcardJoin) {
  const UniformGeneratorOptions gopt{.num_objects = 8,
                                     .num_snapshots = 12,
                                     .seed = 7};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space = SmallSpace();
  NmEngine engine(d, space);
  const auto cells = engine.TouchedCells();
  ASSERT_GE(cells.size(), 3u);
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const Pattern left(
        cells[rng.UniformInt(0, static_cast<int>(cells.size()) - 1)]);
    const Pattern right(std::vector<CellId>{
        cells[rng.UniformInt(0, static_cast<int>(cells.size()) - 1)],
        cells[rng.UniformInt(0, static_cast<int>(cells.size()) - 1)]});
    const Pattern joined = left.Concat(Pattern(kWildcardCell)).Concat(right);
    EXPECT_LE(engine.NmTotal(joined),
              std::max(engine.NmTotal(left), engine.NmTotal(right)) + 1e-9);
  }
}

TEST(WildcardMinerTest, FindsGappedMotif) {
  const TrajectoryDataset d = GappedMotifData(30, 17);
  const MiningSpace space = SmallSpace(4, 0.1);
  NmEngine engine(d, space);
  MinerOptions opt;
  opt.k = 10;
  opt.min_length = 3;
  opt.max_pattern_length = 3;
  opt.max_wildcards = 1;
  const MiningResult result = MineTrajPatterns(engine, opt);
  ASSERT_FALSE(result.patterns.empty());
  const CellId a = space.grid.CellOf(Point2(0.125, 0.125));
  const CellId b = space.grid.CellOf(Point2(0.875, 0.875));
  const Pattern motif(std::vector<CellId>{a, kWildcardCell, b});
  // The gapped motif must be the very best length-3 pattern: the middle
  // position is unpredictable, so every fully-specified (a, x, b) scores
  // strictly worse.
  EXPECT_EQ(result.patterns[0].pattern, motif)
      << "got " << result.patterns[0].pattern.ToString();
}

TEST(WildcardMinerTest, NoEdgeWildcardsInResults) {
  const TrajectoryDataset d = GappedMotifData(10, 23);
  const MiningSpace space = SmallSpace(4, 0.1);
  NmEngine engine(d, space);
  MinerOptions opt;
  opt.k = 20;
  opt.max_pattern_length = 4;
  opt.max_wildcards = 2;
  const MiningResult result = MineTrajPatterns(engine, opt);
  for (const auto& sp : result.patterns) {
    const Pattern& p = sp.pattern;
    EXPECT_NE(p[0], kWildcardCell) << p.ToString();
    EXPECT_NE(p[p.length() - 1], kWildcardCell) << p.ToString();
  }
}

TEST(GapRerankTest, GapsNeverLowerScoresAndRerankSorts) {
  const UniformGeneratorOptions gopt{.num_objects = 6,
                                     .num_snapshots = 12,
                                     .seed = 41};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space = SmallSpace(4, 0.12);
  NmEngine engine(d, space);
  MinerOptions opt;
  opt.k = 8;
  opt.min_length = 2;
  opt.max_pattern_length = 3;
  const MiningResult mined = MineTrajPatterns(engine, opt);
  const auto reranked = RerankWithGaps(engine, mined.patterns, 2);
  ASSERT_EQ(reranked.size(), mined.patterns.size());
  for (size_t i = 1; i < reranked.size(); ++i) {
    EXPECT_GE(reranked[i - 1].nm, reranked[i].nm);
  }
  // Per pattern: the gapped score dominates the contiguous score.
  for (const auto& sp : mined.patterns) {
    const double gapped = engine.NmTotalWithGaps(sp.pattern, 2);
    EXPECT_GE(gapped, sp.nm - 1e-9) << sp.pattern.ToString();
  }
}

TEST(WildcardMinerTest, DisabledByDefault) {
  const TrajectoryDataset d = GappedMotifData(10, 29);
  const MiningSpace space = SmallSpace(4, 0.1);
  NmEngine engine(d, space);
  MinerOptions opt;
  opt.k = 20;
  opt.max_pattern_length = 3;
  const MiningResult result = MineTrajPatterns(engine, opt);
  for (const auto& sp : result.patterns) {
    EXPECT_FALSE(sp.pattern.HasWildcard()) << sp.pattern.ToString();
  }
}

}  // namespace
}  // namespace trajpattern
