#include <gtest/gtest.h>

#include <vector>

#include "core/classifier.h"
#include "core/parameters.h"
#include "datagen/bus_generator.h"
#include "datagen/planted_generator.h"
#include "trajectory/transform.h"

namespace trajpattern {
namespace {

TEST(ParameterSuggestionTest, FollowsSection5Guidance) {
  PlantedPatternOptions gen;
  gen.pattern = {Point2(0.2, 0.2), Point2(0.8, 0.8)};
  gen.num_with_pattern = 5;
  gen.num_background = 0;
  gen.num_snapshots = 10;
  gen.sigma = 0.01;
  const TrajectoryDataset d = GeneratePlantedPatterns(gen);
  const ParameterSuggestion s = SuggestParameters(d, 64);
  EXPECT_DOUBLE_EQ(s.delta, 0.01);          // delta = mean sigma
  EXPECT_DOUBLE_EQ(s.gamma, 0.03);          // gamma = 3 sigma
  EXPECT_GE(s.cells_per_side, 1);
  EXPECT_LE(s.cells_per_side, 64);          // cap respected
  // The grid must cover every snapshot.
  const Grid grid = s.MakeGrid();
  for (const auto& t : d) {
    for (const auto& pt : t) {
      EXPECT_TRUE(s.box.Contains(pt.mean));
      EXPECT_TRUE(grid.IsValid(grid.CellOf(pt.mean)));
    }
  }
}

TEST(ParameterSuggestionTest, DegenerateDataFallsBack) {
  TrajectoryDataset d;
  Trajectory t("still");
  for (int i = 0; i < 5; ++i) t.Append(Point2(0.3, 0.3), 0.0);
  d.Add(std::move(t));
  const ParameterSuggestion s = SuggestParameters(d, 32);
  EXPECT_GT(s.delta, 0.0);
  EXPECT_GT(s.box.width(), 0.0);
  EXPECT_GE(s.cells_per_side, 1);
  // Empty data must not crash either.
  const ParameterSuggestion e = SuggestParameters(TrajectoryDataset(), 32);
  EXPECT_GE(e.cells_per_side, 1);
}

TEST(PatternClassifierTest, SeparatesBusRoutesByLocationPatterns) {
  // Two routes; train on the first days, classify the last day.  Route
  // identity lives in the regions the bus traverses, so the classifier
  // mines LOCATION patterns (velocity profiles of two loop routes are
  // too alike to separate).
  BusGeneratorOptions gen;
  gen.num_routes = 2;
  gen.buses_per_route = 6;
  gen.num_days = 5;
  gen.num_snapshots = 50;
  gen.seed = 5;  // spatially disjoint routes (overlapping routes are a
                 // genuinely hard case; see ZScoreHandlesOverlap below)
  const TrajectoryDataset traces = GenerateBusTraces(gen);

  // Split per route and day using the id format "d<day>_r<route>_...".
  auto select = [&](int route, bool last_day) {
    TrajectoryDataset out;
    const std::string rtag = "_r" + std::to_string(route) + "_";
    const std::string dtag = "d" + std::to_string(gen.num_days - 1) + "_";
    for (const auto& t : traces) {
      const bool is_last = t.id().rfind(dtag, 0) == 0;
      if (t.id().find(rtag) != std::string::npos && is_last == last_day) {
        out.Add(t);
      }
    }
    return out;
  };
  const TrajectoryDataset train0 = select(0, false);
  const TrajectoryDataset train1 = select(1, false);
  const TrajectoryDataset test0 = select(0, true);
  const TrajectoryDataset test1 = select(1, true);
  ASSERT_EQ(test0.size(), 6u);
  ASSERT_EQ(test1.size(), 6u);

  const Grid grid = Grid::UnitSquare(16);
  const MiningSpace space(
      grid, std::max(grid.cell_width(), grid.cell_height()));

  PatternClassifier::Options copt;
  copt.miner.k = 15;
  copt.miner.min_length = 2;
  copt.miner.max_pattern_length = 4;
  copt.miner.max_candidates_per_iteration = 3000;
  copt.score_top_patterns = 5;
  PatternClassifier classifier(space, copt);
  classifier.Train({{"route0", train0}, {"route1", train1}});

  EXPECT_EQ(classifier.labels().size(), 2u);
  EXPECT_FALSE(classifier.class_patterns(0).empty());
  EXPECT_FALSE(classifier.class_patterns(1).empty());

  // Route-regular movement should classify cleanly.
  EXPECT_GE(classifier.Accuracy(test0, "route0"), 0.9);
  EXPECT_GE(classifier.Accuracy(test1, "route1"), 0.9);
}

TEST(PatternClassifierTest, ZScoreHandlesOverlap) {
  // Seed 13 produces two heavily overlapping route regions — the hard
  // case.  The z-score standardization should still beat chance clearly
  // on the combined test day.
  BusGeneratorOptions gen;
  gen.num_routes = 2;
  gen.buses_per_route = 6;
  gen.num_days = 5;
  gen.num_snapshots = 50;
  gen.seed = 13;
  const TrajectoryDataset traces = GenerateBusTraces(gen);
  auto select = [&](int route, bool last_day) {
    TrajectoryDataset out;
    const std::string rtag = "_r" + std::to_string(route) + "_";
    const std::string dtag = "d" + std::to_string(gen.num_days - 1) + "_";
    for (const auto& t : traces) {
      const bool is_last = t.id().rfind(dtag, 0) == 0;
      if (t.id().find(rtag) != std::string::npos && is_last == last_day) {
        out.Add(t);
      }
    }
    return out;
  };
  const Grid grid = Grid::UnitSquare(16);
  const MiningSpace space(grid,
                          std::max(grid.cell_width(), grid.cell_height()));
  PatternClassifier::Options copt;
  copt.miner.k = 15;
  copt.miner.min_length = 2;
  copt.miner.max_pattern_length = 4;
  copt.miner.max_candidates_per_iteration = 3000;
  PatternClassifier classifier(space, copt);
  classifier.Train({{"route0", select(0, false)}, {"route1", select(1, false)}});
  const double acc = (classifier.Accuracy(select(0, true), "route0") +
                      classifier.Accuracy(select(1, true), "route1")) /
                     2.0;
  EXPECT_GE(acc, 0.7);
}

TEST(PatternClassifierTest, ScoresAreCenteredPerClass) {
  PlantedPatternOptions a;
  a.pattern = {Point2(0.2, 0.2), Point2(0.4, 0.4), Point2(0.6, 0.6)};
  a.num_with_pattern = 15;
  a.num_background = 0;
  a.num_snapshots = 10;
  a.seed = 3;
  PlantedPatternOptions b = a;
  b.pattern = {Point2(0.8, 0.2), Point2(0.6, 0.4), Point2(0.4, 0.6)};
  b.seed = 4;
  const TrajectoryDataset da = GeneratePlantedPatterns(a);
  const TrajectoryDataset db = GeneratePlantedPatterns(b);

  const MiningSpace space(Grid::UnitSquare(10), 0.05);
  PatternClassifier::Options copt;
  copt.miner.k = 5;
  copt.miner.min_length = 2;
  copt.miner.max_pattern_length = 3;
  PatternClassifier classifier(space, copt);
  classifier.Train({{"A", da}, {"B", db}});

  // A trajectory carrying motif A must classify as A and vice versa.
  EXPECT_EQ(classifier.Classify(da[0]), "A");
  EXPECT_EQ(classifier.Classify(db[0]), "B");
  const auto scores = classifier.Scores(da[0]);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_GT(scores[0], scores[1]);
}

}  // namespace
}  // namespace trajpattern
