#include <gtest/gtest.h>

#include <cmath>

#include "trajectory/synchronizer.h"
#include "trajectory/trajectory.h"
#include "trajectory/transform.h"

namespace trajpattern {
namespace {

Trajectory MakeTrajectory(const std::string& id,
                          std::initializer_list<Point2> means,
                          double sigma = 0.01) {
  Trajectory t(id);
  for (const auto& m : means) t.Append(m, sigma);
  return t;
}

TEST(TrajectoryTest, AppendAndAccess) {
  Trajectory t("a");
  EXPECT_TRUE(t.empty());
  t.Append(Point2(0.1, 0.2), 0.05);
  t.Append(TrajectoryPoint(Point2(0.3, 0.4), 0.06));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].mean, Point2(0.1, 0.2));
  EXPECT_DOUBLE_EQ(t[1].sigma, 0.06);
  EXPECT_EQ(t.id(), "a");
}

TEST(TrajectoryDatasetTest, Aggregates) {
  TrajectoryDataset d;
  d.Add(MakeTrajectory("a", {{0.0, 0.0}, {1.0, 1.0}}));
  d.Add(MakeTrajectory("b", {{0.5, 0.5}, {0.6, 0.6}, {0.7, 0.7}}));
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.TotalPoints(), 5u);
  EXPECT_DOUBLE_EQ(d.AverageLength(), 2.5);
}

TEST(TrajectoryDatasetTest, MeanBoundingBox) {
  TrajectoryDataset d;
  d.Add(MakeTrajectory("a", {{0.0, 0.2}, {1.0, 0.8}}));
  const BoundingBox box = d.MeanBoundingBox(0.1);
  EXPECT_DOUBLE_EQ(box.min().x, -0.1);
  EXPECT_DOUBLE_EQ(box.min().y, 0.1);
  EXPECT_DOUBLE_EQ(box.max().x, 1.1);
  EXPECT_DOUBLE_EQ(box.max().y, 0.9);
}

TEST(TrajectoryDatasetTest, SplitHeadTail) {
  TrajectoryDataset d;
  for (int i = 0; i < 5; ++i) {
    d.Add(MakeTrajectory("t" + std::to_string(i), {{0.0, 0.0}}));
  }
  const auto [head, tail] = d.Split(3);
  EXPECT_EQ(head.size(), 3u);
  EXPECT_EQ(tail.size(), 2u);
  EXPECT_EQ(head[0].id(), "t0");
  EXPECT_EQ(tail[0].id(), "t3");
}

TEST(VelocityTransformTest, MeansAreDifferences) {
  const Trajectory t =
      MakeTrajectory("a", {{0.0, 0.0}, {0.1, 0.2}, {0.3, 0.3}}, 0.01);
  const Trajectory v = ToVelocityTrajectory(t);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NEAR(v[0].mean.x, 0.1, 1e-12);
  EXPECT_NEAR(v[0].mean.y, 0.2, 1e-12);
  EXPECT_NEAR(v[1].mean.x, 0.2, 1e-12);
  EXPECT_NEAR(v[1].mean.y, 0.1, 1e-12);
}

TEST(VelocityTransformTest, SigmaIsRootSumOfSquares) {
  Trajectory t("a");
  t.Append(Point2(0.0, 0.0), 0.03);
  t.Append(Point2(0.1, 0.0), 0.04);
  const Trajectory v = ToVelocityTrajectory(t);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NEAR(v[0].sigma, 0.05, 1e-12);  // 3-4-5
}

TEST(VelocityTransformTest, ShortTrajectoriesBecomeEmpty) {
  EXPECT_TRUE(ToVelocityTrajectory(MakeTrajectory("a", {})).empty());
  EXPECT_TRUE(ToVelocityTrajectory(MakeTrajectory("a", {{0.5, 0.5}})).empty());
}

TEST(VelocityTransformTest, DatasetKeepsCount) {
  TrajectoryDataset d;
  d.Add(MakeTrajectory("a", {{0.0, 0.0}, {0.1, 0.1}, {0.2, 0.2}}));
  d.Add(MakeTrajectory("b", {{0.0, 0.0}, {0.5, 0.0}}));
  const TrajectoryDataset v = ToVelocityTrajectories(d);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].size(), 2u);
  EXPECT_EQ(v[1].size(), 1u);
  EXPECT_EQ(v[0].id(), "a");
}

TEST(NormalizeTest, MapsBoxToUnitSquare) {
  TrajectoryDataset d;
  d.Add(MakeTrajectory("a", {{-1.0, 0.0}, {1.0, 2.0}}, 0.2));
  const BoundingBox box(Point2(-1.0, 0.0), Point2(1.0, 2.0));
  const TrajectoryDataset n = NormalizeToUnitSquare(d, box);
  EXPECT_EQ(n[0][0].mean, Point2(0.0, 0.0));
  EXPECT_EQ(n[0][1].mean, Point2(1.0, 1.0));
  // Sigma scaled by 1/max(w, h) = 1/2.
  EXPECT_DOUBLE_EQ(n[0][0].sigma, 0.1);
}

TEST(SynchronizerTest, InterpolatesLinearMotion) {
  Synchronizer::Options opt;
  opt.start_time = 0.0;
  opt.interval = 1.0;
  opt.num_snapshots = 5;
  opt.base_sigma = 0.01;
  Synchronizer sync(opt);
  // Reports at t=0 and t=2 moving at velocity (1, 0) per unit time.
  const std::vector<LocationReport> reports = {
      {0.0, Point2(0.0, 0.0)}, {2.0, Point2(2.0, 0.0)}};
  const Trajectory t = sync.Synchronize("obj", reports);
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0].mean, Point2(0.0, 0.0));
  // At t=1 only the first report is known: no velocity yet.
  EXPECT_EQ(t[1].mean, Point2(0.0, 0.0));
  EXPECT_EQ(t[2].mean, Point2(2.0, 0.0));
  // After the second report the velocity (1, 0) extrapolates.
  EXPECT_EQ(t[3].mean, Point2(3.0, 0.0));
  EXPECT_EQ(t[4].mean, Point2(4.0, 0.0));
}

TEST(SynchronizerTest, SigmaGrowsWithElapsedTime) {
  Synchronizer::Options opt;
  opt.num_snapshots = 4;
  opt.base_sigma = 0.01;
  opt.sigma_growth = 0.005;
  Synchronizer sync(opt);
  const std::vector<LocationReport> reports = {{0.0, Point2(0.0, 0.0)}};
  const Trajectory t = sync.Synchronize("obj", reports);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_DOUBLE_EQ(t[0].sigma, 0.01);
  EXPECT_DOUBLE_EQ(t[1].sigma, 0.015);
  EXPECT_DOUBLE_EQ(t[3].sigma, 0.025);
}

TEST(SynchronizerTest, NeverReportingObjectYieldsEmptyTrajectory) {
  Synchronizer::Options opt;
  opt.num_snapshots = 5;
  Synchronizer sync(opt);
  // A registered device that stayed silent: a well-defined empty
  // trajectory, not an assertion failure.
  const Trajectory t = sync.Synchronize("silent", {});
  EXPECT_EQ(t.id(), "silent");
  EXPECT_EQ(t.size(), 0u);
}

TEST(SynchronizerTest, SnapshotBeforeFirstReport) {
  Synchronizer::Options opt;
  opt.start_time = 0.0;
  opt.interval = 1.0;
  opt.num_snapshots = 2;
  opt.base_sigma = 0.01;
  Synchronizer sync(opt);
  const std::vector<LocationReport> reports = {{1.5, Point2(0.7, 0.3)}};
  const Trajectory t = sync.Synchronize("obj", reports);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].mean, Point2(0.7, 0.3));
  EXPECT_EQ(t[1].mean, Point2(0.7, 0.3));
}

}  // namespace
}  // namespace trajpattern
