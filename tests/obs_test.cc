// The observability layer's contracts: lock-free metrics are exact under
// contention (1-thread and 8-thread runs of the same workload produce the
// same snapshot), snapshots are pure reads, exporters emit valid JSON /
// Prometheus text, the trace recorder's Chrome export is well-formed with
// every span complete, and — above all — instrumentation never changes
// mining answers.  Builds and passes with TRAJPATTERN_OBS=OFF too: the
// classes are always compiled; only the TP_* macro call sites vanish.

#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "core/nm_engine.h"
#include "datagen/zebranet_generator.h"
#include "geometry/grid.h"
#include "json_check.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "prom_lint.h"

namespace trajpattern {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TraceRecorder;

// Drives `threads` workers through the same total workload against a
// local registry and returns the resulting snapshot.
MetricsSnapshot RunWorkload(int threads, int total_ops) {
  MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("test.ops");
  obs::Gauge* g = reg.GetGauge("test.level");
  obs::Histogram* h = reg.GetHistogram("test.sizes", {1.0, 10.0, 100.0});
  const int per_thread = total_ops / threads;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      // Each thread observes its slice of the same global index sequence,
      // so the multiset of observations is thread-count invariant.
      for (int i = 0; i < per_thread; ++i) {
        c->Add(2);
        h->Observe(static_cast<double>((t * per_thread + i) % 128));
      }
    });
  }
  for (auto& th : pool) th.join();
  g->Set(42.5);
  return reg.Snapshot();
}

TEST(ObsMetricsTest, SnapshotDeterministicAcrossThreadCounts) {
  constexpr int kOps = 8 * 1000;
  const MetricsSnapshot one = RunWorkload(1, kOps);
  const MetricsSnapshot eight = RunWorkload(8, kOps);
  EXPECT_EQ(one, eight);
  EXPECT_EQ(one.counters.at("test.ops"), 2 * kOps);
  EXPECT_EQ(one.histograms.at("test.sizes").count, kOps);
  EXPECT_DOUBLE_EQ(one.gauges.at("test.level"), 42.5);
}

TEST(ObsMetricsTest, HistogramBucketizesOnInclusiveUpperBounds) {
  MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("h", {1.0, 10.0});
  for (double v : {0.5, 1.0, 2.0, 10.0, 11.0, 1000.0}) h->Observe(v);
  const auto data = reg.Snapshot().histograms.at("h");
  ASSERT_EQ(data.counts.size(), 3u);  // two bounded buckets + overflow
  EXPECT_EQ(data.counts[0], 2);       // 0.5, 1.0
  EXPECT_EQ(data.counts[1], 2);       // 2.0, 10.0
  EXPECT_EQ(data.counts[2], 2);       // 11.0, 1000.0
  EXPECT_EQ(data.count, 6);
  EXPECT_DOUBLE_EQ(data.sum, 0.5 + 1.0 + 2.0 + 10.0 + 11.0 + 1000.0);
}

TEST(ObsMetricsTest, SnapshotIsStableAcrossRepeatedReads) {
  MetricsRegistry reg;
  reg.GetCounter("a")->Add(7);
  reg.GetGauge("b")->Set(-3.25);
  reg.GetHistogram("c", {5.0})->Observe(2.0);
  const MetricsSnapshot first = reg.Snapshot();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(reg.Snapshot(), first);
  reg.Reset();
  const MetricsSnapshot zeroed = reg.Snapshot();
  EXPECT_EQ(zeroed.counters.at("a"), 0);
  EXPECT_EQ(zeroed.histograms.at("c").count, 0);
  EXPECT_NE(zeroed, first);
}

TEST(ObsMetricsTest, HandlesStayValidAfterReset) {
  MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("persistent");
  c->Add(3);
  reg.Reset();
  c->Add(4);
  EXPECT_EQ(reg.Snapshot().counters.at("persistent"), 4);
  EXPECT_EQ(reg.GetCounter("persistent"), c);
}

TEST(ObsMetricsTest, JsonExportIsValidAndHandlesNonFinite) {
  MetricsRegistry reg;
  reg.GetCounter("n.scored")->Add(5);
  reg.GetGauge("omega")->Set(-std::numeric_limits<double>::infinity());
  reg.GetHistogram("sizes", {10.0})->Observe(3.0);
  const std::string json = obs::ToJson(reg.Snapshot());
  EXPECT_TRUE(test::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"n.scored\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("null"), std::string::npos) << json;  // -inf gauge
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

TEST(ObsMetricsTest, PrometheusExportSanitizesNames) {
  MetricsRegistry reg;
  reg.GetCounter("miner.candidates_evaluated")->Add(9);
  reg.GetHistogram("nm.batch_size", {10.0})->Observe(4.0);
  const std::string text = obs::ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE miner_candidates_evaluated counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("miner_candidates_evaluated 9"), std::string::npos);
  EXPECT_NE(text.find("nm_batch_size_bucket{le=\"10\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("nm_batch_size_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("nm_batch_size_count 1"), std::string::npos);
  EXPECT_EQ(text.find('.'), std::string::npos) << "unsanitized metric name";
}

// The full promtool-style lint (tests/prom_lint.h) over an export that
// exercises every shape the registry can produce: dotted and hyphenated
// names (must sanitize), per-shard numbered series, a -Inf gauge, and
// multi-bucket histograms (cumulativity + le="+Inf" + _count coherence).
TEST(ObsMetricsTest, PrometheusExportPassesLint) {
  MetricsRegistry reg;
  reg.GetCounter("miner.candidates_evaluated")->Add(9);
  reg.GetCounter("shard.0.candidates_pruned")->Add(2);
  reg.GetCounter("shard.1.candidates_pruned")->Add(5);
  reg.GetGauge("miner.omega")->Set(-std::numeric_limits<double>::infinity());
  reg.GetGauge("shard.merge-latency")->Set(1.5);
  obs::Histogram* h =
      reg.GetHistogram("nm.batch_size", {1.0, 10.0, 100.0});
  for (double v : {0.5, 4.0, 40.0, 400.0, 4000.0}) h->Observe(v);
  const std::string text = obs::ToPrometheusText(reg.Snapshot());
  const auto issues = test::PromLint(text);
  std::string joined;
  for (const auto& i : issues) joined += i + "\n";
  EXPECT_TRUE(issues.empty()) << joined << "--- exposition ---\n" << text;
}

// The lint itself must catch the failure modes it exists for; otherwise a
// green PrometheusExportPassesLint proves nothing.
TEST(PromLintTest, CatchesMalformedExposition) {
  EXPECT_FALSE(test::PromLint("bad-name 1\n").empty());
  EXPECT_FALSE(test::PromLint("orphan_sample 1\n").empty());  // no TYPE
  EXPECT_FALSE(test::PromLint("# TYPE d counter\nd 1\nd 1\n").empty());
  // Non-cumulative buckets.
  EXPECT_FALSE(test::PromLint("# TYPE h histogram\n"
                              "h_bucket{le=\"1\"} 5\n"
                              "h_bucket{le=\"2\"} 3\n"
                              "h_bucket{le=\"+Inf\"} 5\n"
                              "h_sum 4\nh_count 5\n")
                   .empty());
  // Missing le="+Inf".
  EXPECT_FALSE(test::PromLint("# TYPE h histogram\n"
                              "h_bucket{le=\"1\"} 5\n"
                              "h_sum 4\nh_count 5\n")
                   .empty());
  // +Inf bucket disagrees with _count.
  EXPECT_FALSE(test::PromLint("# TYPE h histogram\n"
                              "h_bucket{le=\"+Inf\"} 4\n"
                              "h_sum 4\nh_count 5\n")
                   .empty());
  // A well-formed document sails through.
  EXPECT_TRUE(test::PromLint("# TYPE ok counter\nok 3\n"
                             "# TYPE g gauge\ng -Inf\n"
                             "# TYPE h histogram\n"
                             "h_bucket{le=\"1\"} 2\n"
                             "h_bucket{le=\"+Inf\"} 5\n"
                             "h_sum 9.5\nh_count 5\n")
                  .empty());
}

TEST(ObsTraceTest, ChromeExportIsValidJsonWithCompleteSpans) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Start(1024);
  rec.SetThreadName("obs-test-main");
  { obs::ScopedSpan outer("outer"); obs::ScopedSpan inner("inner"); }
  rec.RecordCounter("depth", 3.0);
  rec.RecordCounter("bad", std::numeric_limits<double>::quiet_NaN());
  std::thread([&] {
    rec.SetThreadName("obs-test-worker");
    obs::ScopedSpan worker_span("worker");
  }).join();
  rec.Stop();

  const std::string path = testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(rec.WriteChromeTrace(path));
  std::string json;
  ASSERT_TRUE(test::ReadFileToString(path, &json));
  EXPECT_TRUE(test::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  // Three spans were opened and three closed, so the export must carry
  // exactly three complete "X" events, each with a ts and a dur, plus the
  // one finite counter sample and thread-name metadata.
  const auto events = rec.Collect();
  int spans = 0, counters = 0;
  for (const auto& e : events) {
    if (e.phase == 'X') ++spans;
    if (e.phase == 'C') ++counters;
    EXPECT_GE(e.ts_us, 0.0);
    if (e.phase == 'X') EXPECT_GE(e.dur_us, 0.0);
  }
  EXPECT_EQ(spans, 3);
  EXPECT_EQ(counters, 1);  // the NaN sample was skipped
  EXPECT_EQ(test::CountOccurrences(json, "\"ph\": \"X\""), 3);
  EXPECT_EQ(test::CountOccurrences(json, "\"ph\": \"M\""), 2);  // two threads
  EXPECT_NE(json.find("obs-test-main"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsTraceTest, RingOverflowKeepsNewestAndCountsDropped) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Start(8);
  for (int i = 0; i < 20; ++i) rec.RecordCounter("tick", i);
  rec.Stop();
  const auto events = rec.Collect();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(rec.dropped_events(), 12u);
  // Oldest-first within the surviving window: values 12..19.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].value, 12.0 + static_cast<double>(i));
  }
}

// Silent truncation is the trace format's worst failure mode: a clean-
// looking export missing its earliest spans.  The loss must be visible in
// the artifact itself (droppedEvents header) and in the metrics registry
// (trace.dropped_events counter), not only via the recorder's accessor.
TEST(ObsTraceTest, DroppedEventsSurfaceInHeaderAndRegistry) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Start(8);
  for (int i = 0; i < 20; ++i) rec.RecordCounter("tick", i);
  rec.Stop();
  const std::string json = rec.ChromeTraceJson();
  EXPECT_TRUE(test::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"droppedEvents\": 12"), std::string::npos) << json;
#if TRAJPATTERN_OBS_ENABLED
  // >= because the global registry accumulates across tests in this
  // binary (the ring-overflow test above also drops 12).
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  ASSERT_EQ(snap.counters.count("trace.dropped_events"), 1u);
  EXPECT_GE(snap.counters.at("trace.dropped_events"), 12);
#endif
}

TEST(ObsMacroTest, MacrosFollowCompileTimeSwitch) {
  TP_COUNTER_ADD("obs_test.macro_counter", 3);
  TP_GAUGE_SET("obs_test.macro_gauge", 1.5);
  TP_HISTOGRAM_OBSERVE("obs_test.macro_hist", 2.0, {10.0});
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
#if TRAJPATTERN_OBS_ENABLED
  EXPECT_EQ(snap.counters.at("obs_test.macro_counter"), 3);
  EXPECT_DOUBLE_EQ(snap.gauges.at("obs_test.macro_gauge"), 1.5);
  EXPECT_EQ(snap.histograms.at("obs_test.macro_hist").count, 1);
#else
  EXPECT_EQ(snap.counters.count("obs_test.macro_counter"), 0u);
  EXPECT_EQ(snap.gauges.count("obs_test.macro_gauge"), 0u);
  EXPECT_EQ(snap.histograms.count("obs_test.macro_hist"), 0u);
#endif
}

TEST(ObsIntegrationTest, TracingNeverChangesMiningAnswers) {
  ZebraNetGeneratorOptions gen;
  gen.num_zebras = 20;
  gen.num_snapshots = 25;
  gen.num_groups = 4;
  gen.seed = 7;
  const TrajectoryDataset data = GenerateZebraNet(gen);
  const Grid grid = Grid::UnitSquare(8);
  const MiningSpace space(grid, grid.cell_width());
  MinerOptions opt;
  opt.k = 5;
  opt.max_pattern_length = 3;

  NmEngine baseline_engine(data, space);
  const MiningResult baseline = MineTrajPatterns(baseline_engine, opt);

  TraceRecorder::Global().Start(1 << 14);
  NmEngine traced_engine(data, space);
  const MiningResult traced = MineTrajPatterns(traced_engine, opt);
  TraceRecorder::Global().Stop();

  opt.num_threads = 8;
  NmEngine parallel_engine(data, space);
  const MiningResult parallel = MineTrajPatterns(parallel_engine, opt);

  ASSERT_EQ(baseline.patterns.size(), traced.patterns.size());
  ASSERT_EQ(baseline.patterns.size(), parallel.patterns.size());
  for (size_t i = 0; i < baseline.patterns.size(); ++i) {
    EXPECT_EQ(baseline.patterns[i].pattern, traced.patterns[i].pattern);
    EXPECT_EQ(std::memcmp(&baseline.patterns[i].nm, &traced.patterns[i].nm,
                          sizeof(double)),
              0);
    EXPECT_EQ(baseline.patterns[i].pattern, parallel.patterns[i].pattern);
    EXPECT_EQ(std::memcmp(&baseline.patterns[i].nm, &parallel.patterns[i].nm,
                          sizeof(double)),
              0);
  }
}

}  // namespace
}  // namespace trajpattern
