// Tests of the PR-3 window-scoring kernel work: streaming-vs-gather
// bit-identity, the ω-aware early-abandon contract, all-wildcard
// rejection, arena warm-up edge cases, and checkpoint v1/v2 compat.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "core/miner.h"
#include "core/mining_space.h"
#include "core/nm_engine.h"
#include "datagen/uniform_generator.h"
#include "io/checkpoint.h"
#include "prob/log_space.h"
#include "prob/rng.h"

namespace trajpattern {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool BitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!BitEqual(a[i], b[i])) return false;
  }
  return true;
}

TrajectoryDataset UniformData(int objects, int snapshots, uint64_t seed) {
  UniformGeneratorOptions opt;
  opt.num_objects = objects;
  opt.num_snapshots = snapshots;
  opt.seed = seed;
  return GenerateUniformObjects(opt);
}

/// A dataset with wildly varying trajectory lengths (including
/// single-snapshot and empty-window-count cases) so the kernels see
/// every too-short / exactly-one-window / many-windows branch.
TrajectoryDataset RaggedData(uint64_t seed) {
  Rng rng(seed);
  TrajectoryDataset d;
  const int lengths[] = {1, 2, 3, 1, 7, 4, 12, 1, 5};
  int id = 0;
  for (int len : lengths) {
    Trajectory t("t" + std::to_string(id++));
    for (int s = 0; s < len; ++s) {
      t.Append(Point2(rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)), 0.05);
    }
    d.Add(std::move(t));
  }
  return d;
}

/// A pattern mix covering every kernel branch: singulars, runs, interior
/// wildcards, wildcard edges, and patterns longer than some (or all)
/// trajectories.
std::vector<Pattern> MixedPatterns(const NmEngine& engine) {
  const std::vector<CellId> cells = engine.TouchedCells();
  EXPECT_GE(cells.size(), 3u);
  const CellId a = cells[0];
  const CellId b = cells[1 % cells.size()];
  const CellId c = cells[2 % cells.size()];
  const CellId w = kWildcardCell;
  return {
      Pattern(a),
      Pattern(std::vector<CellId>{a, b}),
      Pattern(std::vector<CellId>{b, a, c}),
      Pattern(std::vector<CellId>{a, w, b}),
      Pattern(std::vector<CellId>{w, a, b, w}),
      Pattern(std::vector<CellId>{a, w, w, b, c}),
      Pattern(std::vector<CellId>{a, b, c, a, b, c, a, b}),
      Pattern(std::vector<CellId>{c, w, a, w, c, w, a, w, c, w, a, w, c}),
  };
}

TEST(WindowKernelTest, StreamingMatchesGatherBitwise) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    const MiningSpace space(Grid::UnitSquare(6), 0.17);
    const TrajectoryDataset d = UniformData(12, 9, seed);
    NmEngine engine(d, space);
    for (const Pattern& p : MixedPatterns(engine)) {
      engine.set_window_kernel(WindowKernel::kGather);
      const double nm_gather = engine.NmTotal(p);
      const double match_gather = engine.MatchTotal(p);
      engine.set_window_kernel(WindowKernel::kStreaming);
      EXPECT_TRUE(BitEqual(engine.NmTotal(p), nm_gather))
          << "seed " << seed << " len " << p.length();
      EXPECT_TRUE(BitEqual(engine.MatchTotal(p), match_gather))
          << "seed " << seed << " len " << p.length();
    }
  }
}

TEST(WindowKernelTest, StreamingMatchesGatherOnRaggedTrajectories) {
  const MiningSpace space(Grid::UnitSquare(5), 0.2);
  const TrajectoryDataset d = RaggedData(3);
  NmEngine engine(d, space);
  for (const Pattern& p : MixedPatterns(engine)) {
    engine.set_window_kernel(WindowKernel::kGather);
    const double nm_gather = engine.NmTotal(p);
    engine.set_window_kernel(WindowKernel::kStreaming);
    EXPECT_TRUE(BitEqual(engine.NmTotal(p), nm_gather)) << p.length();
  }
}

TEST(WindowKernelTest, BatchMatchesSerialAcrossKernelsAndThreads) {
  const MiningSpace space(Grid::UnitSquare(6), 0.17);
  const TrajectoryDataset d = UniformData(20, 12, 11);
  NmEngine engine(d, space);
  const std::vector<Pattern> batch = MixedPatterns(engine);

  engine.set_window_kernel(WindowKernel::kGather);
  const std::vector<double> gather_1t = engine.NmTotalBatch(batch, 1);
  const std::vector<double> gather_8t = engine.NmTotalBatch(batch, 8);
  engine.set_window_kernel(WindowKernel::kStreaming);
  const std::vector<double> streaming_1t = engine.NmTotalBatch(batch, 1);
  const std::vector<double> streaming_8t = engine.NmTotalBatch(batch, 8);

  EXPECT_TRUE(BitEqual(gather_1t, gather_8t));
  EXPECT_TRUE(BitEqual(gather_1t, streaming_1t));
  EXPECT_TRUE(BitEqual(gather_1t, streaming_8t));

  // Serial per-pattern calls agree with the batch too.
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(BitEqual(engine.NmTotal(batch[i]), streaming_1t[i]));
  }
}

TEST(WindowKernelTest, NoPruningDefaultLeavesStatsZero) {
  const MiningSpace space(Grid::UnitSquare(6), 0.17);
  const TrajectoryDataset d = UniformData(10, 8, 5);
  NmEngine engine(d, space);
  BatchScoreStats stats;
  engine.NmTotalBatch(MixedPatterns(engine), 1, &stats);
  EXPECT_EQ(stats.candidates_pruned, 0u);
  EXPECT_EQ(stats.trajectories_skipped, 0);
}

TEST(WindowKernelTest, PrunedScoresAreUpperBoundsBelowOmega) {
  const MiningSpace space(Grid::UnitSquare(8), 0.125);
  const TrajectoryDataset d = UniformData(40, 10, 9);
  NmEngine engine(d, space);
  std::vector<Pattern> batch;
  for (CellId c : engine.TouchedCells()) batch.push_back(Pattern(c));
  ASSERT_GE(batch.size(), 8u);

  const std::vector<double> exact = engine.NmTotalBatch(batch, 1);
  std::vector<double> sorted = exact;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  const double omega = sorted[4];  // a top-5 threshold

  BatchScoreStats stats;
  const std::vector<double> pruned =
      engine.NmTotalBatch(batch, 1, &stats, omega);
  ASSERT_EQ(pruned.size(), exact.size());

  EXPECT_GT(stats.candidates_pruned, 0u);
  EXPECT_GT(stats.trajectories_skipped, 0);
  size_t divergent = 0;
  for (size_t i = 0; i < exact.size(); ++i) {
    if (BitEqual(pruned[i], exact[i])) continue;
    ++divergent;
    // An abandoned scan returns a partial sum: an upper bound on the
    // exact NM that is itself below the threshold.
    EXPECT_GE(pruned[i], exact[i]);
    EXPECT_LT(pruned[i], omega);
  }
  // Every divergent score comes from an abandon; the reverse need not
  // hold (a skipped trajectory can contribute an exact 0.0 when its best
  // window probability rounds to 1, leaving the partial sum equal to the
  // exact total).
  EXPECT_LE(divergent, stats.candidates_pruned);
  // Anything at or above ω must come back exact (top-k preservation).
  for (size_t i = 0; i < exact.size(); ++i) {
    if (exact[i] >= omega) {
      EXPECT_TRUE(BitEqual(pruned[i], exact[i]));
    }
  }

  // Pruned batches are thread-count invariant like unpruned ones.
  BatchScoreStats stats8;
  const std::vector<double> pruned8 =
      engine.NmTotalBatch(batch, 8, &stats8, omega);
  EXPECT_TRUE(BitEqual(pruned, pruned8));
  EXPECT_EQ(stats.candidates_pruned, stats8.candidates_pruned);
  EXPECT_EQ(stats.trajectories_skipped, stats8.trajectories_skipped);
}

TEST(WindowKernelTest, PruningThresholdExactlyAtAScoreKeepsItExact) {
  // The abandon test is strict (< threshold): a candidate whose exact NM
  // *equals* the threshold is still a legitimate top-k member and must
  // come back bit-exact, including when the running partial sum lands on
  // the threshold mid-scan.  Probed at ω = an exact score and one ulp to
  // either side, wildcard-bearing patterns included.
  const MiningSpace space(Grid::UnitSquare(6), 0.17);
  const TrajectoryDataset d = UniformData(25, 10, 21);
  NmEngine engine(d, space);
  const std::vector<Pattern> batch = MixedPatterns(engine);
  const std::vector<double> exact = engine.NmTotalBatch(batch, 1);

  std::vector<double> finite;
  for (double v : exact) {
    if (std::isfinite(v)) finite.push_back(v);
  }
  ASSERT_GE(finite.size(), 2u);
  std::sort(finite.begin(), finite.end(), std::greater<double>());
  const double mid = finite[finite.size() / 2];

  for (const double omega :
       {mid, std::nextafter(mid, kNegInf),
        std::nextafter(mid, std::numeric_limits<double>::infinity())}) {
    BatchScoreStats stats;
    const std::vector<double> pruned =
        engine.NmTotalBatch(batch, 1, &stats, omega);
    ASSERT_EQ(pruned.size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      if (exact[i] >= omega) {
        EXPECT_TRUE(BitEqual(pruned[i], exact[i]))
            << "pattern " << i << " at/above omega came back inexact";
      } else if (!BitEqual(pruned[i], exact[i])) {
        EXPECT_GE(pruned[i], exact[i]);
        EXPECT_LT(pruned[i], omega);
      }
    }
  }
}

TEST(WindowKernelTest, PruningHandlesNegInfScoresAndColumns) {
  // A trajectory pinned far outside a pattern's cells yields -inf window
  // probabilities; the 4-accumulator max scan and the abandon test must
  // treat those columns as "contributes nothing", not poison neighbors.
  TrajectoryDataset d = RaggedData(3);
  Trajectory far("far");
  for (int s = 0; s < 6; ++s) {
    far.Append(Point2(1e3 + s, 1e3), 1e-9);  // hopeless for any unit cell
  }
  d.Add(std::move(far));
  const MiningSpace space(Grid::UnitSquare(5), 0.2);
  NmEngine engine(d, space);
  const std::vector<Pattern> batch = MixedPatterns(engine);
  const std::vector<double> exact = engine.NmTotalBatch(batch, 1);
  // Any threshold, including -inf itself (nothing compares below it, so
  // nothing may be abandoned) must preserve the contract.
  for (const double omega : {kNegInf, -1e12, exact[0]}) {
    BatchScoreStats stats;
    const std::vector<double> pruned =
        engine.NmTotalBatch(batch, 1, &stats, omega);
    const std::vector<double> pruned8 =
        engine.NmTotalBatch(batch, 8, nullptr, omega);
    EXPECT_TRUE(BitEqual(pruned, pruned8));
    for (size_t i = 0; i < exact.size(); ++i) {
      if (!BitEqual(pruned[i], exact[i])) {
        EXPECT_GE(pruned[i], exact[i]);
        EXPECT_LT(pruned[i], omega);
      }
    }
    if (BitEqual(omega, kNegInf)) {
      EXPECT_TRUE(BitEqual(pruned, exact));
    }
  }
}

TEST(WindowKernelTest, MinerOmegaPruningPreservesTopK) {
  const MiningSpace space(Grid::UnitSquare(6), 0.17);
  const TrajectoryDataset d = UniformData(30, 12, 21);

  MinerOptions opt;
  opt.k = 5;
  opt.max_pattern_length = 3;

  NmEngine exact_engine(d, space);
  const MiningResult exact = MineTrajPatterns(exact_engine, opt);
  EXPECT_EQ(exact.stats.candidates_pruned, 0);

  opt.omega_pruning = true;
  NmEngine pruned_engine(d, space);
  const MiningResult pruned = MineTrajPatterns(pruned_engine, opt);

  ASSERT_EQ(exact.patterns.size(), pruned.patterns.size());
  for (size_t i = 0; i < exact.patterns.size(); ++i) {
    EXPECT_EQ(exact.patterns[i].pattern, pruned.patterns[i].pattern);
    EXPECT_TRUE(BitEqual(exact.patterns[i].nm, pruned.patterns[i].nm));
  }
  EXPECT_GT(pruned.stats.candidates_pruned, 0);
  EXPECT_GT(pruned.stats.trajectories_skipped, 0);
}

TEST(WindowKernelTest, AllWildcardPatternsAreRejected) {
  const MiningSpace space(Grid::UnitSquare(4), 0.25);
  const TrajectoryDataset d = UniformData(4, 5, 13);
  NmEngine engine(d, space);

  const Pattern empty{std::vector<CellId>{}};
  const Pattern stars(std::vector<CellId>{kWildcardCell, kWildcardCell});
  EXPECT_EQ(NmEngine::ValidateScorable(empty).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(NmEngine::ValidateScorable(stars).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(NmEngine::ValidateScorable(Pattern(CellId{0})).ok());
  EXPECT_TRUE(
      NmEngine::ValidateScorable(Pattern(std::vector<CellId>{0, kWildcardCell}))
          .ok());

  // The NM entry points reject by value (-inf: unreachable by any real
  // pattern) rather than dividing by the zero specified-count.
  for (WindowKernel k : {WindowKernel::kStreaming, WindowKernel::kGather}) {
    engine.set_window_kernel(k);
    EXPECT_EQ(engine.NmTotal(stars), kNegInf);
    EXPECT_EQ(engine.Nm(stars, 0), kNegInf);
    const std::vector<double> batch =
        engine.NmTotalBatch({Pattern(CellId{0}), stars});
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_GT(batch[0], kNegInf);
    EXPECT_EQ(batch[1], kNegInf);
  }
  EXPECT_EQ(engine.NmTotalWithGaps(stars, 2), kNegInf);

  // Match does not normalize: the all-wildcard pattern stays defined and
  // scores 1 per trajectory long enough to host a window.
  EXPECT_EQ(engine.MatchTotal(stars), static_cast<double>(d.size()));
}

TEST(WindowKernelTest, EmptyDatasetScoresZeroAndWarmsNothing) {
  const MiningSpace space(Grid::UnitSquare(4), 0.25);
  const TrajectoryDataset d;
  NmEngine engine(d, space);
  EXPECT_TRUE(engine.TouchedCells().empty());
  EXPECT_EQ(engine.WarmCells({0, 1, 2}), 3u);
  EXPECT_EQ(engine.num_cached_cells(), 3u);
  // Zero-length columns: scoring sums over no trajectories.
  EXPECT_EQ(engine.NmTotal(Pattern(CellId{0})), 0.0);
  EXPECT_EQ(engine.MatchTotal(Pattern(CellId{0})), 0.0);
}

TEST(WindowKernelTest, SingleSnapshotTrajectoriesFloorLongPatterns) {
  const MiningSpace space(Grid::UnitSquare(4), 0.25);
  TrajectoryDataset d;
  for (int i = 0; i < 3; ++i) {
    Trajectory t("t" + std::to_string(i));
    t.Append(Point2(0.3, 0.3), 0.05);
    d.Add(std::move(t));
  }
  NmEngine engine(d, space);
  const CellId c = space.grid.CellOf(Point2(0.3, 0.3));
  // A length-2 pattern fits no window: every trajectory contributes the
  // log floor to NM and 0 to match.
  const Pattern pair(std::vector<CellId>{c, c});
  EXPECT_EQ(engine.NmTotal(pair), 3.0 * LogFloor());
  EXPECT_EQ(engine.MatchTotal(pair), 0.0);
  // Singulars still score normally.
  EXPECT_GT(engine.NmTotal(Pattern(c)), 3.0 * LogFloor());
}

TEST(WindowKernelTest, RewarmingIsANoOp) {
  const MiningSpace space(Grid::UnitSquare(4), 0.25);
  const TrajectoryDataset d = UniformData(6, 6, 17);
  NmEngine engine(d, space);
  const std::vector<CellId> cells = engine.TouchedCells();
  ASSERT_GE(cells.size(), 2u);

  const std::vector<CellId> two{cells[0], cells[1]};
  EXPECT_EQ(engine.WarmCells(two), 2u);
  EXPECT_EQ(engine.num_cached_cells(), 2u);
  // Re-warming (with duplicates) adds nothing and grows nothing.
  EXPECT_EQ(engine.WarmCells({cells[0], cells[1], cells[0]}), 0u);
  EXPECT_EQ(engine.num_cached_cells(), 2u);
  // A batch over warmed-plus-new cells warms exactly the new ones.
  BatchScoreStats stats;
  engine.NmTotalBatch(MixedPatterns(engine), 1, &stats);
  EXPECT_EQ(engine.num_cached_cells(), 2u + stats.cells_warmed);
  EXPECT_GT(stats.cells_warmed, 0u);
}

TEST(WindowKernelTest, WarmingEmptyCellListIsANoOp) {
  const MiningSpace space(Grid::UnitSquare(4), 0.25);
  const TrajectoryDataset d = UniformData(4, 5, 19);
  NmEngine engine(d, space);
  NmEngine::WarmStats stats;
  EXPECT_EQ(engine.WarmCells({}, 4, &stats), 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(engine.num_cached_cells(), 0u);
  // A wildcard-only request is equally empty: wildcards have no column.
  EXPECT_EQ(engine.WarmCells({kWildcardCell, kWildcardCell}, 1, &stats), 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(WindowKernelTest, WarmStatsSplitHitsAndMisses) {
  const MiningSpace space(Grid::UnitSquare(4), 0.25);
  const TrajectoryDataset d = UniformData(6, 6, 17);
  NmEngine engine(d, space);
  const std::vector<CellId> cells = engine.TouchedCells();
  ASSERT_GE(cells.size(), 2u);

  NmEngine::WarmStats stats;
  // Cold: an in-request duplicate counts as a hit (staged by the same
  // call), the two distinct cells as misses.
  EXPECT_EQ(engine.WarmCells({cells[0], cells[1], cells[0]}, 1, &stats), 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
  // Warm: every request is a hit, nothing is materialized.
  EXPECT_EQ(engine.WarmCells({cells[1], cells[0]}, 1, &stats), 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.hits, 2u);

  // The batch stats surface the same split: a second identical batch
  // warms nothing and reports every cell request as a hit.
  BatchScoreStats cold, warm;
  const std::vector<Pattern> patterns = MixedPatterns(engine);
  engine.NmTotalBatch(patterns, 1, &cold);
  engine.NmTotalBatch(patterns, 1, &warm);
  EXPECT_EQ(warm.cells_warmed, 0u);
  EXPECT_EQ(warm.cells_hit, cold.cells_hit + cold.cells_warmed);
}

TEST(WindowKernelTest, WarmOrderAndThreadCountDoNotChangeScores) {
  const MiningSpace space(Grid::UnitSquare(5), 0.2);
  const TrajectoryDataset d = UniformData(12, 9, 29);
  NmEngine reference(d, space);
  const std::vector<CellId> cells = reference.TouchedCells();
  ASSERT_GE(cells.size(), 3u);
  const std::vector<Pattern> patterns = MixedPatterns(reference);
  reference.WarmCells(cells, 1);
  const std::vector<double> want = reference.NmTotalBatch(patterns, 1);

  Rng rng(31);
  for (int threads : {1, 2, 4}) {
    std::vector<CellId> shuffled = cells;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1],
                shuffled[static_cast<size_t>(
                    rng.UniformInt(0, static_cast<int>(i) - 1))]);
    }
    NmEngine engine(d, space);
    EXPECT_EQ(engine.WarmCells(shuffled, threads), cells.size());
    EXPECT_TRUE(BitEqual(engine.NmTotalBatch(patterns, threads), want))
        << threads << " threads, shuffled warm order";
  }
}

TEST(WindowKernelTest, FactoredWarmupMatchesLazySerialPath) {
  // WarmCells materializes rectangular columns through the x/y-factored
  // path; the serial NmTotal entry points go through the unfactored
  // per-cell computation.  Both must produce bit-identical scores — and
  // under the radial model, where no factorization applies, the parallel
  // warm-up must agree with the serial path too.
  for (const IndifferenceModel model :
       {IndifferenceModel::kRectangular, IndifferenceModel::kRadial}) {
    const MiningSpace space(Grid::UnitSquare(4), 0.25, model);
    const TrajectoryDataset d = UniformData(8, 7, 37);
    NmEngine lazy(d, space);
    const std::vector<Pattern> patterns = MixedPatterns(lazy);
    std::vector<double> want(patterns.size());
    for (size_t i = 0; i < patterns.size(); ++i) {
      want[i] = lazy.NmTotal(patterns[i]);
    }
    NmEngine warmed(d, space);
    warmed.WarmCells(warmed.TouchedCells(), 4);
    const std::vector<double> got = warmed.NmTotalBatch(patterns, 4);
    EXPECT_TRUE(BitEqual(got, want))
        << (model == IndifferenceModel::kRadial ? "radial" : "rectangular");
  }
}

TEST(WindowKernelTest, CheckpointV2RoundTripsWorkCounters) {
  MinerCheckpoint cp;
  cp.iteration = 3;
  cp.k = 5;
  cp.omega = -12.5;
  cp.candidates_evaluated = 12345;
  cp.candidates_pruned = 678;
  cp.scores.push_back({Pattern(std::vector<CellId>{1, kWildcardCell, 2}),
                       -13.25});
  cp.prev_high.push_back(Pattern(CellId{1}));
  cp.prev_queue.push_back(Pattern(CellId{2}));

  std::stringstream ss;
  ASSERT_TRUE(WriteMinerCheckpoint(cp, ss).ok());
  EXPECT_NE(ss.str().find("trajpattern_checkpoint,v2"), std::string::npos);

  MinerCheckpoint back;
  ASSERT_TRUE(ReadMinerCheckpoint(ss, &back).ok());
  EXPECT_EQ(back.iteration, 3);
  EXPECT_EQ(back.k, 5);
  EXPECT_EQ(back.candidates_evaluated, 12345);
  EXPECT_EQ(back.candidates_pruned, 678);
  ASSERT_EQ(back.scores.size(), 1u);
  EXPECT_EQ(back.scores[0].pattern, cp.scores[0].pattern);
  EXPECT_TRUE(BitEqual(back.scores[0].nm, cp.scores[0].nm));
}

TEST(WindowKernelTest, CheckpointReaderAcceptsV1WithZeroCounters) {
  // A v1 file as written before the work counters existed: no
  // candidates_evaluated / candidates_pruned lines.
  const std::string v1 =
      "trajpattern_checkpoint,v1\n"
      "iteration,2\n"
      "k,4\n"
      "omega,-0x1.9p+3\n"
      "scores,1\n"
      "-0x1.ap+3,7;*;9\n"
      "prev_high,1\n"
      "7\n"
      "prev_queue,0\n"
      "end\n";
  std::stringstream ss(v1);
  MinerCheckpoint cp;
  ASSERT_TRUE(ReadMinerCheckpoint(ss, &cp).ok());
  EXPECT_EQ(cp.iteration, 2);
  EXPECT_EQ(cp.k, 4);
  EXPECT_EQ(cp.omega, -12.5);
  EXPECT_EQ(cp.candidates_evaluated, 0);
  EXPECT_EQ(cp.candidates_pruned, 0);
  ASSERT_EQ(cp.scores.size(), 1u);
  EXPECT_EQ(cp.scores[0].pattern,
            Pattern(std::vector<CellId>{7, kWildcardCell, 9}));
  ASSERT_EQ(cp.prev_high.size(), 1u);
  EXPECT_EQ(cp.prev_queue.size(), 0u);

  std::stringstream bad("trajpattern_checkpoint,v3\nend\n");
  EXPECT_FALSE(ReadMinerCheckpoint(bad, &cp).ok());
}

}  // namespace
}  // namespace trajpattern
