#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/mining_space.h"
#include "prob/rng.h"
#include "prediction/dead_reckoning.h"
#include "prediction/kalman_model.h"
#include "prediction/motion_model.h"
#include "prediction/pattern_assisted.h"
#include "prediction/rmf_model.h"

namespace trajpattern {
namespace {

Trajectory LineTrajectory(int n, Point2 start, Vec2 v) {
  Trajectory t("line");
  Point2 p = start;
  for (int i = 0; i < n; ++i) {
    t.Append(p, 0.0);
    p += v;
  }
  return t;
}

TEST(LinearModelTest, PredictsConstantVelocityAfterReport) {
  LinearModel lm;
  lm.Initialize(Point2(0.0, 0.0));
  EXPECT_EQ(lm.PredictNext(), Point2(0.0, 0.0));  // no velocity yet
  lm.AdvanceReported(Point2(1.0, 0.0), Vec2(1.0, 0.0));
  EXPECT_EQ(lm.PredictNext(), Point2(2.0, 0.0));
  lm.AdvancePredicted(Point2(2.0, 0.0));
  EXPECT_EQ(lm.PredictNext(), Point2(3.0, 0.0));
}

TEST(KalmanModelTest, ConvergesOnLinearMotion) {
  KalmanModel kf;
  kf.Initialize(Point2(0.0, 0.0));
  // Feed reports of constant-velocity motion; prediction error must
  // shrink below the step size.
  Point2 p(0.0, 0.0);
  const Vec2 v(0.1, 0.05);
  double last_err = 1e9;
  for (int i = 1; i <= 25; ++i) {
    p += v;
    kf.AdvanceReported(p, v);
    last_err = Distance(kf.PredictNext(), p + v);
  }
  EXPECT_LT(last_err, 0.01);
}

TEST(KalmanModelTest, CoastsBetweenReports) {
  KalmanModel kf;
  kf.Initialize(Point2(0.0, 0.0));
  Point2 p(0.0, 0.0);
  const Vec2 v(0.1, 0.0);
  for (int i = 1; i <= 20; ++i) {
    p += v;
    kf.AdvanceReported(p, v);
  }
  // Without reports the filter should keep extrapolating the velocity.
  const Point2 pred1 = kf.PredictNext();
  kf.AdvancePredicted(pred1);
  const Point2 pred2 = kf.PredictNext();
  EXPECT_NEAR(pred2.x - pred1.x, 0.1, 0.02);
}

TEST(RmfModelTest, LearnsConstantVelocity) {
  RmfModel rmf;
  rmf.Initialize(Point2(0.0, 0.0));
  Point2 p(0.0, 0.0);
  const Vec2 v(0.05, 0.02);
  for (int i = 1; i <= 10; ++i) {
    p += v;
    rmf.AdvanceReported(p, v);
  }
  EXPECT_LT(Distance(rmf.PredictNext(), p + v), 0.01);
}

TEST(RmfModelTest, FallsBackWithShortHistory) {
  RmfModel rmf;
  rmf.Initialize(Point2(1.0, 1.0));
  EXPECT_EQ(rmf.PredictNext(), Point2(1.0, 1.0));
  rmf.AdvanceReported(Point2(1.1, 1.0), Vec2(0.1, 0.0));
  // Constant-velocity fallback.
  EXPECT_LT(Distance(rmf.PredictNext(), Point2(1.2, 1.0)), 1e-12);
}

TEST(DeadReckoningTest, LinearMotionNeedsExactlyOneReport) {
  // The model starts with zero velocity, so the accepted predictions stay
  // at the origin until the accumulated drift exceeds U; that single
  // report delivers the true velocity and no further report is needed.
  const Trajectory actual =
      LineTrajectory(20, Point2(0.0, 0.0), Vec2(0.01, 0.0));
  LinearModel lm;
  DeadReckoningOptions opt;
  opt.uncertainty = 0.02;
  opt.c = 2.0;
  const DeadReckoningResult r = SimulateDeadReckoning(actual, &lm, opt);
  EXPECT_EQ(r.predictions, 19);
  EXPECT_EQ(r.mispredictions, 1);
  EXPECT_EQ(r.server_view.size(), actual.size());
  // After the report the server view tracks the object exactly.
  EXPECT_LT(Distance(r.server_view[19].mean, actual[19].mean), 1e-9);
}

TEST(DeadReckoningTest, SharpTurnForcesReport) {
  Trajectory actual("turn");
  for (int i = 0; i < 10; ++i) actual.Append(Point2(0.05 * i, 0.0), 0.0);
  for (int i = 1; i <= 10; ++i) actual.Append(Point2(0.45, 0.05 * i), 0.0);
  LinearModel lm;
  DeadReckoningOptions opt;
  opt.uncertainty = 0.02;
  const DeadReckoningResult r = SimulateDeadReckoning(actual, &lm, opt);
  EXPECT_GT(r.mispredictions, 0);
  // Server view must coincide with actual wherever a report happened and
  // carry sigma = U/c everywhere.
  for (const auto& pt : r.server_view) {
    EXPECT_DOUBLE_EQ(pt.sigma, opt.uncertainty / opt.c);
  }
}

TEST(DeadReckoningTest, GrowingUncertaintyDelaysReports) {
  // Constant slow drift: with constant U the report fires when the drift
  // passes U; with growing U the tolerance outruns the drift for longer.
  const Trajectory actual =
      LineTrajectory(30, Point2(0.0, 0.0), Vec2(0.01, 0.0));
  DeadReckoningOptions constant;
  constant.uncertainty = 0.02;
  DeadReckoningOptions growing = constant;
  growing.uncertainty_growth = 0.02;
  LinearModel lm1, lm2;
  const auto r_const = SimulateDeadReckoning(actual, &lm1, constant);
  const auto r_grow = SimulateDeadReckoning(actual, &lm2, growing);
  EXPECT_EQ(r_const.mispredictions, 1);
  // Tolerance at snapshot t is 0.02 + 0.02 t while the drift is 0.01 t,
  // so the growing scheme never needs a report.
  EXPECT_EQ(r_grow.mispredictions, 0);
  // The recorded sigma reflects the widened tolerance.
  EXPECT_GT(r_grow.server_view[20].sigma, r_grow.server_view[1].sigma);
}

TEST(DeadReckoningTest, LostReportsKeepServerStale) {
  const Trajectory actual =
      LineTrajectory(20, Point2(0.0, 0.0), Vec2(0.01, 0.0));
  DeadReckoningOptions opt;
  opt.uncertainty = 0.02;
  // Every report lost: the server never learns the velocity, so once the
  // drift crosses U every subsequent prediction mispredicts.
  opt.report_loss_probability = 1.0;
  LinearModel lm;
  const auto r = SimulateDeadReckoning(actual, &lm, opt);
  EXPECT_EQ(r.lost_reports, r.mispredictions);
  EXPECT_GT(r.mispredictions, 10);
  // Reliable link (the default): no losses, a single report suffices.
  DeadReckoningOptions reliable;
  reliable.uncertainty = 0.02;
  LinearModel lm2;
  const auto r2 = SimulateDeadReckoning(actual, &lm2, reliable);
  EXPECT_EQ(r2.lost_reports, 0);
  EXPECT_EQ(r2.mispredictions, 1);
}

TEST(DeadReckoningTest, LossIsReproduciblePerSeed) {
  Trajectory actual("noisy");
  Rng rng(3);
  Point2 p(0.5, 0.5);
  for (int i = 0; i < 40; ++i) {
    p += Vec2(rng.Normal(0.0, 0.01), rng.Normal(0.0, 0.01));
    actual.Append(p, 0.0);
  }
  DeadReckoningOptions opt;
  opt.uncertainty = 0.01;
  opt.report_loss_probability = 0.3;
  opt.loss_seed = 7;
  LinearModel lm1, lm2;
  const auto a = SimulateDeadReckoning(actual, &lm1, opt);
  const auto b = SimulateDeadReckoning(actual, &lm2, opt);
  EXPECT_EQ(a.mispredictions, b.mispredictions);
  EXPECT_EQ(a.lost_reports, b.lost_reports);
  EXPECT_GT(a.lost_reports, 0);
}

TEST(DeadReckoningTest, EvaluateAggregatesOverDataset) {
  TrajectoryDataset test;
  test.Add(LineTrajectory(10, Point2(0.0, 0.0), Vec2(0.01, 0.0)));
  test.Add(LineTrajectory(10, Point2(0.5, 0.5), Vec2(0.0, 0.01)));
  LinearModel prototype;
  DeadReckoningOptions opt;
  opt.uncertainty = 0.05;
  const PredictionEvaluation eval = EvaluatePrediction(test, prototype, opt);
  EXPECT_EQ(eval.predictions, 18);
  // One drift-triggered report per trajectory (see
  // LinearMotionNeedsExactlyOneReport).
  EXPECT_EQ(eval.mispredictions, 2);
  EXPECT_DOUBLE_EQ(eval.MispredictionRate(), 2.0 / 18.0);
}

TEST(PatternAssistedTest, PatternOverridesBaseOnConfirmedPrefix) {
  // Velocity space: grid over [-1, 1]^2; a pattern that says "after two
  // +x steps comes a +y step".
  const Grid vgrid(BoundingBox(Point2(-1.0, -1.0), Point2(1.0, 1.0)), 20, 20);
  const MiningSpace vspace(vgrid, 0.08);
  const CellId cx = vgrid.CellOf(Point2(0.15, 0.0));
  const CellId cy = vgrid.CellOf(Point2(0.0, 0.15));
  std::vector<ScoredPattern> patterns = {
      {Pattern(std::vector<CellId>{cx, cx, cy}), -0.1}};
  PatternAssistOptions popt;
  popt.confirm_threshold = 0.5;
  popt.min_confirm_length = 2;
  popt.velocity_sigma = 0.03;

  PatternAssistedModel model(std::make_unique<LinearModel>(), patterns,
                             vspace, popt);
  // Actual history: two steps of +x movement (velocity = center of cx),
  // fed through the object-side channel.
  const Vec2 vx = vgrid.CenterOf(cx);
  model.Initialize(Point2(0.0, 0.0));
  model.AdvanceReported(Point2(0.0, 0.0) + vx, vx);
  model.ObserveActual(Point2(0.0, 0.0) + vx);
  model.AdvanceReported(Point2(0.0, 0.0) + vx + vx, vx);
  model.ObserveActual(Point2(0.0, 0.0) + vx + vx);
  const Point2 pred = model.PredictNext();
  EXPECT_GT(model.pattern_hits(), 0);
  // The pattern predicts a +y velocity next, not +x.
  const Point2 base_pred = Point2(0.0, 0.0) + vx + vx + vx;
  const Point2 pattern_pred = Point2(0.0, 0.0) + vx + vx + vgrid.CenterOf(cy);
  EXPECT_LT(Distance(pred, pattern_pred), Distance(pred, base_pred));
}

TEST(PatternAssistedTest, FallsBackToBaseWithoutConfirmation) {
  const Grid vgrid(BoundingBox(Point2(-1.0, -1.0), Point2(1.0, 1.0)), 20, 20);
  const MiningSpace vspace(vgrid, 0.05);
  // Pattern in a velocity region the history never visits.
  const CellId far = vgrid.CellOf(Point2(-0.9, -0.9));
  std::vector<ScoredPattern> patterns = {
      {Pattern(std::vector<CellId>{far, far, far}), -0.1}};
  PatternAssistOptions popt;
  popt.confirm_threshold = 0.9;
  PatternAssistedModel model(std::make_unique<LinearModel>(), patterns,
                             vspace, popt);
  model.Initialize(Point2(0.0, 0.0));
  model.AdvanceReported(Point2(0.1, 0.0), Vec2(0.1, 0.0));
  model.ObserveActual(Point2(0.1, 0.0));
  model.AdvanceReported(Point2(0.2, 0.0), Vec2(0.1, 0.0));
  model.ObserveActual(Point2(0.2, 0.0));
  // Base LinearModel prediction.
  EXPECT_LT(Distance(model.PredictNext(), Point2(0.3, 0.0)), 1e-12);
  EXPECT_EQ(model.pattern_hits(), 0);
}

TEST(PatternAssistedTest, CloneIsIndependent) {
  const Grid vgrid(BoundingBox(Point2(-1.0, -1.0), Point2(1.0, 1.0)), 10, 10);
  const MiningSpace vspace(vgrid, 0.05);
  PatternAssistedModel model(std::make_unique<KalmanModel>(), {}, vspace,
                             PatternAssistOptions{});
  auto clone = model.Clone();
  EXPECT_EQ(clone->name(), "LKF+patterns");
  clone->Initialize(Point2(0.5, 0.5));
  EXPECT_EQ(clone->PredictNext(), Point2(0.5, 0.5));
}

}  // namespace
}  // namespace trajpattern
