#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "baseline/brute_force.h"
#include "core/miner.h"
#include "core/nm_engine.h"
#include "datagen/planted_generator.h"
#include "datagen/uniform_generator.h"

namespace trajpattern {
namespace {

MiningSpace SmallSpace(int n = 4, double delta = 0.12) {
  return MiningSpace(Grid::UnitSquare(n), delta);
}

/// Compares two NM score sequences (best first) within tolerance.
void ExpectSameScores(const std::vector<ScoredPattern>& got,
                      const std::vector<ScoredPattern>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].nm, want[i].nm, 1e-9)
        << "rank " << i << " got " << got[i].pattern.ToString() << " want "
        << want[i].pattern.ToString();
  }
}

TEST(TrajPatternMinerTest, FindsSingularTopOnTrivialData) {
  // One stationary object: the best pattern must sit on its cell.
  Trajectory t("a");
  for (int i = 0; i < 10; ++i) t.Append(Point2(0.6, 0.6), 0.02);
  TrajectoryDataset d;
  d.Add(std::move(t));
  const MiningSpace space = SmallSpace();
  NmEngine engine(d, space);
  const MiningResult result = MineTrajPatterns(engine, {.k = 1});
  ASSERT_EQ(result.patterns.size(), 1u);
  const Pattern& best = result.patterns[0].pattern;
  // Every position of the winner is the object's cell (NM ties across
  // lengths are possible for a stationary object; all-positions-on-cell
  // is the invariant).
  const CellId expect = space.grid.CellOf(Point2(0.6, 0.6));
  for (size_t i = 0; i < best.length(); ++i) EXPECT_EQ(best[i], expect);
}

class MinerExactnessTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MinerExactnessTest, ::testing::Range(1, 7));

// Theorem 1: TrajPattern returns the exact top-k by NM.  Verified against
// brute-force enumeration bounded at the same maximum length.
TEST_P(MinerExactnessTest, MatchesBruteForceTopK) {
  const int seed = GetParam();
  const UniformGeneratorOptions gopt{.num_objects = 6,
                                     .num_snapshots = 10,
                                     .sigma = 0.02,
                                     .seed = static_cast<uint64_t>(seed)};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space = SmallSpace(3, 0.15);
  NmEngine engine(d, space);

  constexpr int kK = 8;
  constexpr size_t kMaxLen = 3;
  MinerOptions opt;
  opt.k = kK;
  opt.max_pattern_length = kMaxLen;
  const MiningResult result = MineTrajPatterns(engine, opt);
  const auto brute = BruteForceTopK(engine, kK, kMaxLen);
  ExpectSameScores(result.patterns, brute);
  EXPECT_FALSE(result.stats.hit_iteration_cap);
}

TEST_P(MinerExactnessTest, MinLengthVariantMatchesBruteForce) {
  const int seed = GetParam();
  const UniformGeneratorOptions gopt{.num_objects = 5,
                                     .num_snapshots = 8,
                                     .sigma = 0.02,
                                     .seed = static_cast<uint64_t>(seed + 50)};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space = SmallSpace(3, 0.15);
  NmEngine engine(d, space);

  constexpr int kK = 5;
  constexpr size_t kMaxLen = 3;
  constexpr size_t kMinLen = 2;
  MinerOptions opt;
  opt.k = kK;
  opt.max_pattern_length = kMaxLen;
  opt.min_length = kMinLen;
  const MiningResult result = MineTrajPatterns(engine, opt);
  const auto brute = BruteForceTopK(engine, kK, kMaxLen, kMinLen);
  ExpectSameScores(result.patterns, brute);
  for (const auto& sp : result.patterns) {
    EXPECT_GE(sp.pattern.length(), kMinLen);
  }
}

TEST(TrajPatternMinerTest, RecoversPlantedPattern) {
  // Plant a 3-step staircase; the miner must surface its grid rendering.
  PlantedPatternOptions popt;
  popt.pattern = {Point2(0.125, 0.125), Point2(0.375, 0.375),
                  Point2(0.625, 0.625)};
  popt.num_with_pattern = 25;
  popt.num_background = 5;
  popt.num_snapshots = 12;
  popt.embed_noise = 0.002;
  popt.sigma = 0.01;
  popt.seed = 9;
  const TrajectoryDataset d = GeneratePlantedPatterns(popt);
  const MiningSpace space(Grid::UnitSquare(4), 0.08);
  NmEngine engine(d, space);

  MinerOptions opt;
  opt.k = 10;
  opt.min_length = 3;
  opt.max_pattern_length = 4;
  const MiningResult result = MineTrajPatterns(engine, opt);
  ASSERT_FALSE(result.patterns.empty());

  std::vector<CellId> expected;
  for (const auto& p : popt.pattern) {
    expected.push_back(space.grid.CellOf(p));
  }
  const Pattern truth(expected);
  bool found = false;
  for (const auto& sp : result.patterns) {
    if (sp.pattern == truth) found = true;
  }
  EXPECT_TRUE(found) << "expected " << truth.ToString();
  // And it should be the very best length-3 pattern.
  EXPECT_EQ(result.patterns[0].pattern, truth);
}

TEST(TrajPatternMinerTest, StatsAreConsistent) {
  const UniformGeneratorOptions gopt{.num_objects = 4,
                                     .num_snapshots = 8,
                                     .seed = 17};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space = SmallSpace(3, 0.15);
  NmEngine engine(d, space);
  MinerOptions opt;
  opt.k = 4;
  opt.max_pattern_length = 2;
  const MiningResult result = MineTrajPatterns(engine, opt);
  EXPECT_GT(result.stats.iterations, 0);
  EXPECT_GT(result.stats.candidates_evaluated, 0);
  EXPECT_GE(result.stats.candidates_generated, 0);
  EXPECT_GT(result.stats.alphabet_size, 0u);
  EXPECT_GE(result.stats.seconds, 0.0);
  EXPECT_EQ(result.patterns.size(), 4u);
  // Results sorted best-first.
  for (size_t i = 1; i < result.patterns.size(); ++i) {
    EXPECT_GE(result.patterns[i - 1].nm, result.patterns[i].nm);
  }
}

TEST(TrajPatternMinerTest, DeterministicAcrossRuns) {
  const UniformGeneratorOptions gopt{.num_objects = 5,
                                     .num_snapshots = 10,
                                     .seed = 23};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space = SmallSpace(3, 0.15);
  NmEngine e1(d, space);
  NmEngine e2(d, space);
  MinerOptions opt;
  opt.k = 6;
  opt.max_pattern_length = 3;
  const MiningResult r1 = MineTrajPatterns(e1, opt);
  const MiningResult r2 = MineTrajPatterns(e2, opt);
  ASSERT_EQ(r1.patterns.size(), r2.patterns.size());
  for (size_t i = 0; i < r1.patterns.size(); ++i) {
    EXPECT_EQ(r1.patterns[i].pattern, r2.patterns[i].pattern);
    EXPECT_DOUBLE_EQ(r1.patterns[i].nm, r2.patterns[i].nm);
  }
}

TEST(TrajPatternMinerTest, CandidateBeamCapIsReported) {
  const UniformGeneratorOptions gopt{.num_objects = 6,
                                     .num_snapshots = 10,
                                     .seed = 29};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space = SmallSpace(4, 0.12);
  NmEngine engine(d, space);
  MinerOptions opt;
  opt.k = 8;
  opt.max_pattern_length = 3;
  opt.max_candidates_per_iteration = 5;
  const MiningResult result = MineTrajPatterns(engine, opt);
  EXPECT_TRUE(result.stats.hit_candidate_cap);
  EXPECT_EQ(result.patterns.size(), 8u);
}

TEST(TrajPatternMinerTest, FullAlphabetAgreesWithTouchedCells) {
  // Restricting the alphabet to touched cells is an optimization only:
  // the mined top-k must be identical.
  const UniformGeneratorOptions gopt{.num_objects = 4,
                                     .num_snapshots = 8,
                                     .seed = 31};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space = SmallSpace(3, 0.2);
  NmEngine e1(d, space);
  NmEngine e2(d, space);
  MinerOptions opt;
  opt.k = 5;
  opt.max_pattern_length = 2;
  opt.restrict_to_touched_cells = true;
  const MiningResult r1 = MineTrajPatterns(e1, opt);
  opt.restrict_to_touched_cells = false;
  const MiningResult r2 = MineTrajPatterns(e2, opt);
  ASSERT_EQ(r1.patterns.size(), r2.patterns.size());
  for (size_t i = 0; i < r1.patterns.size(); ++i) {
    EXPECT_NEAR(r1.patterns[i].nm, r2.patterns[i].nm, 1e-9);
  }
}

}  // namespace
}  // namespace trajpattern
