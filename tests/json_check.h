#ifndef TRAJPATTERN_TESTS_JSON_CHECK_H_
#define TRAJPATTERN_TESTS_JSON_CHECK_H_

/// Dependency-free helpers for tests that assert on emitted artifacts:
/// a strict (RFC 8259 subset) recursive-descent JSON validator plus small
/// file/string utilities.  Validation only — no DOM is built.

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

namespace trajpattern::test {

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (depth_ > 256 || pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    ++depth_;
    SkipWs();
    if (Peek() == '}') { ++pos_; --depth_; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    ++depth_;
    SkipWs();
    if (Peek() == ']') { ++pos_; --depth_; return true; }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!Digits()) return false;
    if (Peek() == '.') { ++pos_; if (!Digits()) return false; }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!Digits()) return false;
    }
    return pos_ > start;
  }

  bool Digits() {
    const size_t start = pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  size_t pos_ = 0;
  int depth_ = 0;
};

inline bool IsValidJson(const std::string& s) {
  return JsonValidator(s).Valid();
}

inline bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream is(path);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  *out = ss.str();
  return true;
}

inline int CountOccurrences(const std::string& haystack,
                            const std::string& needle) {
  int n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

}  // namespace trajpattern::test

#endif  // TRAJPATTERN_TESTS_JSON_CHECK_H_
