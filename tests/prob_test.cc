#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "prob/log_space.h"
#include "prob/normal.h"
#include "prob/rng.h"

namespace trajpattern {
namespace {

TEST(StdNormalCdfTest, KnownValues) {
  EXPECT_NEAR(StdNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StdNormalCdf(1.0), 0.8413447460685429, 1e-9);
  EXPECT_NEAR(StdNormalCdf(-1.0), 1.0 - 0.8413447460685429, 1e-9);
  EXPECT_NEAR(StdNormalCdf(3.0), 0.9986501019683699, 1e-9);
  EXPECT_NEAR(StdNormalCdf(-8.0), 0.0, 1e-12);
  EXPECT_NEAR(StdNormalCdf(8.0), 1.0, 1e-12);
}

TEST(NormalIntervalProbTest, SymmetricInterval) {
  // One-sigma interval: ~68.27%.
  EXPECT_NEAR(NormalIntervalProb(0.0, 1.0, -1.0, 1.0), 0.6826894921,
              1e-8);
  // Two-sigma: ~95.45%.
  EXPECT_NEAR(NormalIntervalProb(0.0, 1.0, -2.0, 2.0), 0.9544997361,
              1e-8);
}

TEST(NormalIntervalProbTest, ShiftAndScaleInvariance) {
  const double p1 = NormalIntervalProb(0.0, 1.0, -0.5, 0.5);
  const double p2 = NormalIntervalProb(10.0, 2.0, 9.0, 11.0);
  EXPECT_NEAR(p1, p2, 1e-12);
}

TEST(NormalIntervalProbTest, DegenerateSigma) {
  EXPECT_DOUBLE_EQ(NormalIntervalProb(0.5, 0.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(NormalIntervalProb(2.0, 0.0, 0.0, 1.0), 0.0);
}

TEST(BesselI0ScaledTest, MatchesSeriesForSmallX) {
  // I0(x) = sum_k (x/2)^{2k} / (k!)^2.
  for (double x : {0.0, 0.1, 0.5, 1.0, 2.0, 3.0}) {
    double i0 = 0.0;
    double term = 1.0;
    for (int k = 0; k < 40; ++k) {
      i0 += term;
      term *= (x / 2.0) * (x / 2.0) / ((k + 1.0) * (k + 1.0));
    }
    EXPECT_NEAR(BesselI0Scaled(x), i0 * std::exp(-x), 2e-7) << "x=" << x;
  }
}

TEST(BesselI0ScaledTest, LargeArgumentAsymptotics) {
  // I0e(x) ~ (1 + 1/(8x) + 9/(128x^2) + 75/(1024x^3)) / sqrt(2 pi x) for
  // large x; the next term (~0.11/x^4) bounds the comparison error.
  for (double x : {10.0, 100.0, 1000.0}) {
    const double asymptotic =
        (1.0 + 1.0 / (8.0 * x) + 9.0 / (128.0 * x * x) +
         75.0 / (1024.0 * x * x * x)) /
        std::sqrt(2.0 * M_PI * x);
    const double tol = (0.2 / (x * x * x * x) + 1e-6) * asymptotic;
    EXPECT_NEAR(BesselI0Scaled(x), asymptotic, tol) << "x=" << x;
  }
}

TEST(RadialWithinProbTest, CenteredDiscMatchesRayleigh) {
  // With nu = 0 the distance is Rayleigh: P(d <= delta) =
  // 1 - exp(-delta^2 / (2 sigma^2)).
  const double sigma = 0.3;
  for (double delta : {0.1, 0.3, 0.6, 1.2}) {
    const double expected = 1.0 - std::exp(-delta * delta / (2 * sigma * sigma));
    EXPECT_NEAR(RadialWithinProb(0.0, sigma, delta), expected, 1e-6)
        << "delta=" << delta;
  }
}

TEST(RadialWithinProbTest, FarCenterIsZeroNearCenterIsOne) {
  EXPECT_NEAR(RadialWithinProb(100.0, 1.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(RadialWithinProb(0.0, 0.01, 5.0), 1.0, 1e-9);
}

TEST(RadialWithinProbTest, MonotoneInDelta) {
  double prev = 0.0;
  for (double delta = 0.05; delta <= 2.0; delta += 0.05) {
    const double p = RadialWithinProb(0.5, 0.25, delta);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
}

TEST(RadialWithinProbTest, DegenerateSigmaIsIndicator) {
  EXPECT_DOUBLE_EQ(RadialWithinProb(0.5, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(RadialWithinProb(1.5, 0.0, 1.0), 0.0);
}

TEST(NormalIntervalProbBatchTest, BitIdenticalToScalarCalls) {
  Rng rng(21);
  const size_t n = 257;  // odd, so any internal blocking sees a tail
  std::vector<double> means(n), sigmas(n), out(n);
  for (size_t i = 0; i < n; ++i) {
    means[i] = rng.Uniform(-1.0, 2.0);
    // Include degenerate sigma = 0 entries: the batch must take the
    // same indicator branch the scalar call does.
    sigmas[i] = i % 7 == 0 ? 0.0 : rng.Uniform(0.001, 0.05);
  }
  const double a = 0.30, b = 0.34;
  NormalIntervalProbBatch(means.data(), sigmas.data(), a, b, out.data(), n);
  for (size_t i = 0; i < n; ++i) {
    const double scalar = NormalIntervalProb(means[i], sigmas[i], a, b);
    EXPECT_EQ(std::memcmp(&out[i], &scalar, sizeof(double)), 0) << "i=" << i;
  }
}

TEST(NormalIntervalProbBatchTest, EmptyIsANoOp) {
  NormalIntervalProbBatch(nullptr, nullptr, 0.0, 1.0, nullptr, 0);
}

TEST(RadialWithinProbBatchTest, BitIdenticalToScalarCalls) {
  Rng rng(23);
  const size_t n = 65;
  std::vector<double> dist(n), sigmas(n), out(n);
  for (size_t i = 0; i < n; ++i) {
    dist[i] = rng.Uniform(0.0, 0.2);
    sigmas[i] = i % 5 == 0 ? 0.0 : rng.Uniform(0.001, 0.05);
  }
  const double delta = 0.05;
  RadialWithinProbBatch(dist.data(), sigmas.data(), delta, out.data(), n);
  for (size_t i = 0; i < n; ++i) {
    const double scalar = RadialWithinProb(dist[i], sigmas[i], delta);
    EXPECT_EQ(std::memcmp(&out[i], &scalar, sizeof(double)), 0) << "i=" << i;
  }
}

TEST(ProbWithinDeltaTest, RectangularFactorizes) {
  const Point2 l(0.2, 0.7);
  const Point2 p(0.25, 0.65);
  const double sigma = 0.05;
  const double delta = 0.03;
  const double expected =
      NormalIntervalProb(l.x, sigma, p.x - delta, p.x + delta) *
      NormalIntervalProb(l.y, sigma, p.y - delta, p.y + delta);
  EXPECT_DOUBLE_EQ(
      ProbWithinDelta(l, sigma, p, delta, IndifferenceModel::kRectangular),
      expected);
}

TEST(ProbWithinDeltaTest, ModelsAgreeQualitatively) {
  // Both models must rank a near cell above a far cell.
  const Point2 l(0.5, 0.5);
  const double sigma = 0.05;
  const double delta = 0.05;
  for (auto model :
       {IndifferenceModel::kRectangular, IndifferenceModel::kRadial}) {
    const double near = ProbWithinDelta(l, sigma, Point2(0.52, 0.5), delta, model);
    const double far = ProbWithinDelta(l, sigma, Point2(0.8, 0.8), delta, model);
    EXPECT_GT(near, far);
    EXPECT_GE(near, 0.0);
    EXPECT_LE(near, 1.0);
  }
}

TEST(ProbWithinDeltaTest, RadialInsideRectangular) {
  // The delta-disc is contained in the delta-square, so the radial
  // probability can never exceed the rectangular one.
  const double sigma = 0.04;
  const double delta = 0.05;
  for (double dx = 0.0; dx <= 0.2; dx += 0.02) {
    const Point2 l(0.5, 0.5);
    const Point2 p(0.5 + dx, 0.5);
    const double rect =
        ProbWithinDelta(l, sigma, p, delta, IndifferenceModel::kRectangular);
    const double rad =
        ProbWithinDelta(l, sigma, p, delta, IndifferenceModel::kRadial);
    EXPECT_LE(rad, rect + 1e-9) << "dx=" << dx;
  }
}

TEST(LogSpaceTest, SafeLogClampsAtFloor) {
  EXPECT_DOUBLE_EQ(SafeLog(1.0), 0.0);
  EXPECT_DOUBLE_EQ(SafeLog(0.0), LogFloor());
  EXPECT_DOUBLE_EQ(SafeLog(-1.0), LogFloor());
  EXPECT_LT(LogFloor(), -600.0);
  EXPECT_TRUE(std::isfinite(LogFloor()));
}

TEST(RngTest, DeterministicWithSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0.0, 1.0), b.Uniform(0.0, 1.0));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 0.5);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(RngTest, PickWeightedRespectsZeroWeight) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.PickWeighted({0.0, 1.0, 0.0}), 1);
  }
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(3);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  // Distinct forks should (with overwhelming probability) differ.
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (child1.Uniform(0.0, 1.0) != child2.Uniform(0.0, 1.0)) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace trajpattern
