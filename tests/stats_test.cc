#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "stats/running_stats.h"
#include "stats/table.h"
#include "stats/timer.h"

namespace trajpattern {
namespace {

TEST(RunningStatsTest, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, /7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, ShiftInvarianceOfVariance) {
  RunningStats a, b;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    a.Add(v);
    b.Add(v + 1000.0);
  }
  EXPECT_NEAR(a.variance(), b.variance(), 1e-9);
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.Millis(), 15.0);
  t.Reset();
  EXPECT_LT(t.Millis(), 15.0);
}

TEST(TableTest, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "12345"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| alpha "), std::string::npos);
  EXPECT_NE(s.find("| 12345 "), std::string::npos);
  // Header rule present.
  EXPECT_NE(s.find("|---"), std::string::npos);
  // All lines share the same width.
  size_t first_len = s.find('\n');
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
  EXPECT_EQ(Table::Num(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace trajpattern
