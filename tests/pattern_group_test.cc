#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/pattern_group.h"

namespace trajpattern {
namespace {

Pattern P2(const Grid& grid, int c0, int r0, int c1, int r1) {
  return Pattern(std::vector<CellId>{grid.At(c0, r0), grid.At(c1, r1)});
}

TEST(SimilarityTest, Definition1) {
  const Grid grid = Grid::UnitSquare(10);
  const double gamma = 0.15;
  // Adjacent cells (0.1 apart) similar; two cells apart (0.2) not.
  EXPECT_TRUE(ArePatternsSimilar(P2(grid, 1, 1, 5, 5), P2(grid, 2, 1, 5, 6),
                                 grid, gamma));
  EXPECT_FALSE(ArePatternsSimilar(P2(grid, 1, 1, 5, 5), P2(grid, 3, 1, 5, 5),
                                  grid, gamma));
  // Similarity must hold at EVERY snapshot.
  EXPECT_FALSE(ArePatternsSimilar(P2(grid, 1, 1, 5, 5), P2(grid, 1, 1, 8, 8),
                                  grid, gamma));
}

TEST(SimilarityTest, DifferentLengthsNeverSimilar) {
  const Grid grid = Grid::UnitSquare(10);
  const Pattern a(std::vector<CellId>{grid.At(1, 1)});
  const Pattern b(std::vector<CellId>{grid.At(1, 1), grid.At(1, 1)});
  EXPECT_FALSE(ArePatternsSimilar(a, b, grid, 1.0));
}

TEST(SimilarityTest, WildcardOnlyMatchesWildcard) {
  const Grid grid = Grid::UnitSquare(10);
  const Pattern a(std::vector<CellId>{grid.At(1, 1), kWildcardCell});
  const Pattern b(std::vector<CellId>{grid.At(1, 1), kWildcardCell});
  const Pattern c(std::vector<CellId>{grid.At(1, 1), grid.At(1, 1)});
  EXPECT_TRUE(ArePatternsSimilar(a, b, grid, 0.15));
  EXPECT_FALSE(ArePatternsSimilar(a, c, grid, 0.15));
}

// The worked example of §4.2: six length-2 patterns whose snapshot groups
// are {p1,p3,p4,p5},{p2,p6} at snapshot 1 and {p1',p3',p6'},{p2',p4'},
// {p5'} at snapshot 2 must yield the pattern groups (P2),(P4),(P5),(P6),
// and (P1,P3).
TEST(PatternGroupTest, PaperWorkedExample) {
  const Grid grid = Grid::UnitSquare(10);
  const double gamma = 0.15;  // adjacent (incl. diagonal) cells cluster
  std::vector<ScoredPattern> pats;
  // Snapshot-1 positions.
  const std::pair<int, int> s1[6] = {{1, 1}, {8, 8}, {2, 1},
                                     {1, 2}, {2, 2}, {8, 7}};
  // Snapshot-2 positions.
  const std::pair<int, int> s2[6] = {{1, 8}, {8, 1}, {2, 8},
                                     {8, 2}, {5, 5}, {1, 7}};
  for (int i = 0; i < 6; ++i) {
    pats.push_back({P2(grid, s1[i].first, s1[i].second, s2[i].first,
                       s2[i].second),
                    -1.0 * i});  // NM descending P1..P6
  }

  const auto groups = GroupPatterns(pats, grid, gamma);
  // Render groups as sets of original indices for comparison.
  std::set<std::set<int>> got;
  for (const auto& g : groups) {
    std::set<int> ids;
    for (const auto& sp : g.members) {
      for (int i = 0; i < 6; ++i) {
        if (sp.pattern == pats[i].pattern) ids.insert(i + 1);
      }
    }
    got.insert(ids);
  }
  const std::set<std::set<int>> want = {{2}, {4}, {5}, {6}, {1, 3}};
  EXPECT_EQ(got, want);
}

TEST(PatternGroupTest, AllMembersPairwiseSimilar) {
  // Whatever the grouping, Def. 2 requires pairwise similarity inside
  // every group.
  const Grid grid = Grid::UnitSquare(10);
  const double gamma = 0.15;
  std::vector<ScoredPattern> pats;
  int rank = 0;
  for (int c = 1; c < 9; c += 2) {
    for (int r = 1; r < 9; r += 3) {
      pats.push_back({P2(grid, c, r, r, c), -0.1 * rank++});
    }
  }
  const auto groups = GroupPatterns(pats, grid, gamma);
  size_t total = 0;
  for (const auto& g : groups) {
    total += g.size();
    for (size_t i = 0; i < g.members.size(); ++i) {
      for (size_t j = i + 1; j < g.members.size(); ++j) {
        EXPECT_TRUE(ArePatternsSimilar(g.members[i].pattern,
                                       g.members[j].pattern, grid, gamma));
      }
    }
  }
  EXPECT_EQ(total, pats.size());  // every pattern grouped exactly once
}

TEST(PatternGroupTest, DifferentLengthsSplit) {
  const Grid grid = Grid::UnitSquare(10);
  std::vector<ScoredPattern> pats;
  pats.push_back({Pattern(std::vector<CellId>{grid.At(1, 1)}), -0.1});
  pats.push_back(
      {Pattern(std::vector<CellId>{grid.At(1, 1), grid.At(1, 1)}), -0.2});
  const auto groups = GroupPatterns(pats, grid, 1.0);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(PatternGroupTest, IdenticalPatternsShareOneGroup) {
  const Grid grid = Grid::UnitSquare(10);
  std::vector<ScoredPattern> pats = {
      {P2(grid, 3, 3, 4, 4), -0.1},
      {P2(grid, 3, 3, 4, 4), -0.2},
      {P2(grid, 3, 4, 4, 3), -0.3},
  };
  const auto groups = GroupPatterns(pats, grid, 0.15);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 3u);
}

TEST(PatternGroupTest, GammaZeroSeparatesDistinctPatterns) {
  const Grid grid = Grid::UnitSquare(10);
  std::vector<ScoredPattern> pats = {
      {P2(grid, 3, 3, 4, 4), -0.1},
      {P2(grid, 3, 4, 4, 3), -0.2},
      {P2(grid, 3, 3, 4, 4), -0.3},  // duplicate of the first
  };
  const auto groups = GroupPatterns(pats, grid, 0.0);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(PatternGroupTest, LargeGammaMergesEverything) {
  const Grid grid = Grid::UnitSquare(10);
  std::vector<ScoredPattern> pats;
  for (int i = 0; i < 5; ++i) {
    pats.push_back({P2(grid, i, i, 9 - i, i), -0.1 * i});
  }
  const auto groups = GroupPatterns(pats, grid, 10.0);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 5u);
}

TEST(PatternGroupTest, GroupsOrderedByBestNm) {
  const Grid grid = Grid::UnitSquare(10);
  std::vector<ScoredPattern> pats = {
      {P2(grid, 1, 1, 1, 1), -5.0},
      {P2(grid, 8, 8, 8, 8), -1.0},
  };
  const auto groups = GroupPatterns(pats, grid, 0.15);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_DOUBLE_EQ(groups[0].members.front().nm, -1.0);
}

TEST(PatternGroupTest, EmptyInputYieldsNoGroups) {
  const Grid grid = Grid::UnitSquare(10);
  EXPECT_TRUE(GroupPatterns({}, grid, 0.15).empty());
}

}  // namespace
}  // namespace trajpattern
