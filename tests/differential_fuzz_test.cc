// Differential fuzz harness: the tier-1 slice of the campaign that
// bench/fuzz_corpus runs at full width in CI.  Every seed here executes
// the complete four-oracle pass (kernels + brute force, pruning,
// checkpoint/resume, thread determinism); see docs/correctness.md for
// the contracts.
#include <cstdio>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "testing/instance.h"
#include "testing/mining_oracle.h"
#include "testing/shrinker.h"

namespace trajpattern {
namespace {

std::string Render(const FuzzInstance& inst) {
  std::ostringstream os;
  WriteInstance(inst, os);
  return os.str();
}

TEST(InstanceTest, GenerationIsDeterministic) {
  for (uint64_t seed : {1ull, 7ull, 42ull, 1000ull}) {
    EXPECT_EQ(Render(GenerateInstance(seed)), Render(GenerateInstance(seed)))
        << "seed " << seed;
  }
}

TEST(InstanceTest, RoundTripIsBitExact) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    const FuzzInstance inst = GenerateInstance(seed);
    const std::string first = Render(inst);
    std::istringstream is(first);
    FuzzInstance parsed;
    const Status s = ParseInstance(is, &parsed);
    ASSERT_TRUE(s.ok()) << "seed " << seed << ": " << s.ToString();
    EXPECT_EQ(Render(parsed), first) << "seed " << seed;
  }
}

TEST(InstanceTest, FileRoundTrip) {
  const FuzzInstance inst = GenerateInstance(3);
  const std::string path =
      ::testing::TempDir() + "/fuzz_instance_roundtrip.repro";
  ASSERT_TRUE(WriteInstanceFile(inst, path).ok());
  FuzzInstance loaded;
  ASSERT_TRUE(ReadInstanceFile(path, &loaded).ok());
  EXPECT_EQ(Render(loaded), Render(inst));
  std::remove(path.c_str());
}

TEST(InstanceTest, ParserRejectsMalformedInput) {
  const struct {
    const char* name;
    const char* text;
  } cases[] = {
      {"empty", ""},
      {"bad header", "not_a_repro,v9\n"},
      {"truncated preamble", "trajpattern_repro,v1\nseed,1\n"},
      {"bad seed", "trajpattern_repro,v1\nseed,banana\n"},
  };
  for (const auto& c : cases) {
    std::istringstream is(c.text);
    FuzzInstance out;
    out.k = 99;  // sentinel: a failed parse must not touch the output
    const Status s = ParseInstance(is, &out);
    EXPECT_FALSE(s.ok()) << c.name;
    EXPECT_EQ(s.code(), StatusCode::kDataLoss) << c.name;
    EXPECT_EQ(out.k, 99) << c.name << ": output modified on failure";
  }
}

TEST(InstanceTest, ShardedAxisRoundTripsAndStaysOptional) {
  FuzzInstance inst = GenerateInstance(3);
  inst.num_shards = 3;
  inst.shard_salt = 0xdeadbeefULL;
  const std::string text = Render(inst);
  EXPECT_NE(text.find("shards,3,3735928559\n"), std::string::npos);
  std::istringstream is(text);
  FuzzInstance parsed;
  ASSERT_TRUE(ParseInstance(is, &parsed).ok());
  EXPECT_EQ(parsed.num_shards, 3);
  EXPECT_EQ(parsed.shard_salt, 0xdeadbeefULL);
  EXPECT_EQ(Render(parsed), text);
  // Unsharded instances carry no shards line at all, so every repro
  // written before the sharded axis existed parses (and re-renders)
  // unchanged.
  inst.num_shards = 0;
  inst.shard_salt = 0;
  const std::string unsharded = Render(inst);
  EXPECT_EQ(unsharded.find("shards,"), std::string::npos);
  std::istringstream is2(unsharded);
  FuzzInstance parsed2;
  ASSERT_TRUE(ParseInstance(is2, &parsed2).ok());
  EXPECT_EQ(parsed2.num_shards, 0);
  EXPECT_EQ(Render(parsed2), unsharded);
}

TEST(InstanceTest, ParserRejectsBadShardsLine) {
  FuzzInstance inst = GenerateInstance(3);
  inst.num_shards = 2;
  const std::string good = Render(inst);
  const size_t pos = good.find("shards,2,");
  ASSERT_NE(pos, std::string::npos);
  const struct {
    const char* name;
    const char* replacement;
  } cases[] = {
      {"zero shards", "shards,0,0"},
      {"negative shards", "shards,-2,0"},
      {"huge shards", "shards,99999,0"},
      {"bad salt", "shards,2,banana"},
      {"missing salt", "shards,2"},
  };
  for (const auto& c : cases) {
    std::string text = good;
    text.replace(pos, good.find('\n', pos) - pos, c.replacement);
    std::istringstream is(text);
    FuzzInstance out;
    const Status s = ParseInstance(is, &out);
    EXPECT_FALSE(s.ok()) << c.name;
    EXPECT_EQ(s.code(), StatusCode::kDataLoss) << c.name;
  }
}

TEST(InstanceTest, ParserRejectsTruncatedTrajectoryBlock) {
  const FuzzInstance inst = GenerateInstance(11);
  std::string text = Render(inst);
  // Chop the trailer and the last line: a torn write.
  text.resize(text.size() / 2);
  std::istringstream is(text);
  FuzzInstance out;
  const Status s = ParseInstance(is, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

// The tier-1 fuzz slice.  CI's fuzz-smoke job extends the same campaign
// to >= 500 seeds via bench/fuzz_corpus.
class DifferentialFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialFuzzTest, OraclePassesOnSeed) {
  const FuzzInstance inst = GenerateInstance(GetParam());
  const OracleReport report = MiningOracle().Check(inst);
  EXPECT_TRUE(report.ok()) << report.divergence;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzzTest,
                         ::testing::Range<uint64_t>(1, 61));

TEST(ShrinkerTest, ReachesAFixpointUnderASimplePredicate) {
  // Predicate independent of the oracle so the test pins the shrinking
  // mechanics alone: "at least 3 snapshots total".  The greedy passes
  // must walk down to exactly 3 and stop.
  FuzzInstance inst = GenerateInstance(1);
  Trajectory filler("filler");
  for (int i = 0; i < 8; ++i) filler.Append(Point2(0.5, 0.5), 0.05);
  inst.data.Add(filler);
  ASSERT_GE(inst.data.TotalPoints(), 3u);
  const auto predicate = [](const FuzzInstance& c) {
    return c.data.TotalPoints() >= 3;
  };
  const FuzzInstance shrunk = Shrinker().Shrink(inst, predicate);
  EXPECT_TRUE(predicate(shrunk));
  EXPECT_EQ(shrunk.data.TotalPoints(), 3u);
  EXPECT_TRUE(shrunk.report_streams.empty());
}

TEST(ShrinkerTest, ShrunkInstanceStillFailsTheSameOracle) {
  // A synthetic always-true predicate would shrink to nothing; instead
  // exercise the real loop: find a seed whose *mutated* copy diverges
  // (force disagreement by corrupting the kill iteration contract is not
  // possible from outside, so use the predicate "k is odd" as a stand-in
  // for a persistent property the shrinker must preserve).
  FuzzInstance inst = GenerateInstance(5);
  inst.k = 5;
  const auto predicate = [](const FuzzInstance& c) { return c.k % 2 == 1; };
  const FuzzInstance shrunk = Shrinker().Shrink(inst, predicate);
  EXPECT_TRUE(predicate(shrunk));
  // Everything removable was removed.
  EXPECT_EQ(shrunk.data.TotalPoints(), 0u);
  EXPECT_TRUE(shrunk.report_streams.empty());
  EXPECT_EQ(shrunk.max_pattern_length, 1u);
}

TEST(ShrinkerTest, DropsShardingWhenTheDivergenceIsNotAShardingBug) {
  FuzzInstance inst = GenerateInstance(5);
  inst.num_shards = 5;
  inst.shard_salt = 0x1234;
  // Predicate ignores sharding entirely, so the shrinker must zero it.
  const auto predicate = [](const FuzzInstance& c) { return c.k >= 1; };
  const FuzzInstance shrunk = Shrinker().Shrink(inst, predicate);
  EXPECT_EQ(shrunk.num_shards, 0);
  EXPECT_EQ(shrunk.shard_salt, 0u);
}

TEST(ShrinkerTest, KeepsShardingWhenTheDivergenceNeedsIt) {
  FuzzInstance inst = GenerateInstance(5);
  inst.num_shards = 5;
  inst.shard_salt = 0x1234;
  const auto predicate = [](const FuzzInstance& c) {
    return c.num_shards >= 2;
  };
  const FuzzInstance shrunk = Shrinker().Shrink(inst, predicate);
  // Stepped down to the smallest shard count that still fails, salt zeroed.
  EXPECT_EQ(shrunk.num_shards, 2);
  EXPECT_EQ(shrunk.shard_salt, 0u);
}

}  // namespace
}  // namespace trajpattern
