#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/mining_space.h"
#include "core/nm_engine.h"
#include "datagen/uniform_generator.h"
#include "prob/log_space.h"
#include "prob/rng.h"

namespace trajpattern {
namespace {

MiningSpace TestSpace(int n = 4, double delta = 0.1) {
  return MiningSpace(Grid::UnitSquare(n), delta);
}

TrajectoryDataset OneTrajectory(std::initializer_list<Point2> means,
                                double sigma = 0.05) {
  Trajectory t("t0");
  for (const auto& m : means) t.Append(m, sigma);
  TrajectoryDataset d;
  d.Add(std::move(t));
  return d;
}

TEST(NmEngineTest, SingularNmIsBestSnapshot) {
  const MiningSpace space = TestSpace();
  const TrajectoryDataset d =
      OneTrajectory({{0.1, 0.1}, {0.9, 0.9}, {0.4, 0.4}});
  NmEngine engine(d, space);
  const CellId c = space.grid.CellOf(Point2(0.1, 0.1));
  const Pattern p(c);
  double best = -1e300;
  for (const auto& pt : d[0]) {
    best = std::max(best, space.LogProb(pt, c));
  }
  EXPECT_NEAR(engine.NmTotal(p), best, 1e-12);
}

TEST(NmEngineTest, PairNmIsBestWindowMean) {
  const MiningSpace space = TestSpace();
  const TrajectoryDataset d =
      OneTrajectory({{0.1, 0.1}, {0.6, 0.6}, {0.9, 0.9}});
  NmEngine engine(d, space);
  const CellId a = space.grid.CellOf(Point2(0.1, 0.1));
  const CellId b = space.grid.CellOf(Point2(0.6, 0.6));
  const Pattern p({std::vector<CellId>{a, b}});
  // Two windows: (s0, s1) and (s1, s2).
  const double w0 =
      space.LogProb(d[0][0], a) + space.LogProb(d[0][1], b);
  const double w1 =
      space.LogProb(d[0][1], a) + space.LogProb(d[0][2], b);
  EXPECT_NEAR(engine.NmTotal(p), std::max(w0, w1) / 2.0, 1e-12);
}

TEST(NmEngineTest, NmSumsOverTrajectories) {
  const MiningSpace space = TestSpace();
  TrajectoryDataset d;
  Trajectory t1("a");
  t1.Append(Point2(0.1, 0.1), 0.05);
  Trajectory t2("b");
  t2.Append(Point2(0.9, 0.9), 0.05);
  d.Add(t1);
  d.Add(t2);
  NmEngine all(d, space);

  TrajectoryDataset d1, d2;
  d1.Add(t1);
  d2.Add(t2);
  NmEngine e1(d1, space);
  NmEngine e2(d2, space);

  const Pattern p(space.grid.CellOf(Point2(0.1, 0.1)));
  EXPECT_NEAR(all.NmTotal(p), e1.NmTotal(p) + e2.NmTotal(p), 1e-12);
}

TEST(NmEngineTest, TooShortTrajectoryContributesFloor) {
  const MiningSpace space = TestSpace();
  const TrajectoryDataset d = OneTrajectory({{0.1, 0.1}});
  NmEngine engine(d, space);
  const CellId c = space.grid.CellOf(Point2(0.1, 0.1));
  const Pattern p({std::vector<CellId>{c, c}});
  EXPECT_DOUBLE_EQ(engine.NmTotal(p), LogFloor());
  EXPECT_DOUBLE_EQ(engine.MatchTotal(p), 0.0);
}

TEST(NmEngineTest, MatchIsExpOfBestWindowSum) {
  const MiningSpace space = TestSpace();
  const TrajectoryDataset d = OneTrajectory({{0.1, 0.1}, {0.6, 0.6}});
  NmEngine engine(d, space);
  const CellId a = space.grid.CellOf(Point2(0.1, 0.1));
  const CellId b = space.grid.CellOf(Point2(0.6, 0.6));
  const Pattern p({std::vector<CellId>{a, b}});
  const double sum = space.LogProb(d[0][0], a) + space.LogProb(d[0][1], b);
  EXPECT_NEAR(engine.MatchTotal(p), std::exp(sum), 1e-12);
}

TEST(NmEngineTest, WildcardPositionScoresLogOne) {
  const MiningSpace space = TestSpace();
  const TrajectoryDataset d = OneTrajectory({{0.1, 0.1}, {0.6, 0.6}});
  NmEngine engine(d, space);
  const CellId a = space.grid.CellOf(Point2(0.1, 0.1));
  const Pattern p({std::vector<CellId>{a, kWildcardCell}});
  // The wildcard contributes log 1 = 0 to the window sum and does not
  // count toward the normalization (SpecifiedCount() == 1).
  const double expected = space.LogProb(d[0][0], a);
  EXPECT_NEAR(engine.NmTotal(p), expected, 1e-12);
}

TEST(NmEngineTest, GapZeroMatchesContiguous) {
  const UniformGeneratorOptions gopt{.num_objects = 5,
                                     .num_snapshots = 12,
                                     .seed = 3};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space = TestSpace(4, 0.15);
  NmEngine engine(d, space);
  const auto cells = engine.TouchedCells();
  ASSERT_GE(cells.size(), 2u);
  const Pattern p({std::vector<CellId>{cells[0], cells[1], cells[0]}});
  EXPECT_NEAR(engine.NmTotalWithGaps(p, 0), engine.NmTotal(p), 1e-9);
}

TEST(NmEngineTest, GapsOnlyImproveNm) {
  const UniformGeneratorOptions gopt{.num_objects = 5,
                                     .num_snapshots = 12,
                                     .seed = 4};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space = TestSpace(4, 0.15);
  NmEngine engine(d, space);
  const auto cells = engine.TouchedCells();
  ASSERT_GE(cells.size(), 3u);
  const Pattern p({std::vector<CellId>{cells[0], cells[2], cells[1]}});
  double prev = engine.NmTotalWithGaps(p, 0);
  for (int gap = 1; gap <= 3; ++gap) {
    const double cur = engine.NmTotalWithGaps(p, gap);
    EXPECT_GE(cur, prev - 1e-9) << "gap=" << gap;
    prev = cur;
  }
}

TEST(NmEngineTest, TouchedCellsCoverSnapshotMeans) {
  const UniformGeneratorOptions gopt{.num_objects = 10,
                                     .num_snapshots = 10,
                                     .seed = 5};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space = TestSpace(8, 0.02);
  NmEngine engine(d, space);
  const auto cells = engine.TouchedCells();
  for (const auto& t : d) {
    for (const auto& pt : t) {
      const CellId c = space.grid.CellOf(pt.mean);
      EXPECT_TRUE(std::binary_search(cells.begin(), cells.end(), c));
    }
  }
}

TEST(NmEngineTest, CountersTrackWork) {
  const MiningSpace space = TestSpace();
  const TrajectoryDataset d = OneTrajectory({{0.1, 0.1}, {0.6, 0.6}});
  NmEngine engine(d, space);
  EXPECT_EQ(engine.num_pattern_evaluations(), 0);
  EXPECT_EQ(engine.num_cached_cells(), 0u);
  const CellId a = space.grid.CellOf(Point2(0.1, 0.1));
  const CellId b = space.grid.CellOf(Point2(0.6, 0.6));
  engine.NmTotal(Pattern(a));
  EXPECT_EQ(engine.num_pattern_evaluations(), 1);
  EXPECT_EQ(engine.num_cached_cells(), 1u);
  // Re-scoring the same cell reuses its column.
  engine.NmTotal(Pattern(std::vector<CellId>{a, a}));
  EXPECT_EQ(engine.num_cached_cells(), 1u);
  engine.MatchTotal(Pattern(b));
  EXPECT_EQ(engine.num_pattern_evaluations(), 3);
  EXPECT_EQ(engine.num_cached_cells(), 2u);
}

TEST(NmEngineTest, WindowLogMatchAgreesWithEngine) {
  const MiningSpace space = TestSpace();
  const TrajectoryDataset d = OneTrajectory({{0.1, 0.1}, {0.6, 0.6}});
  const CellId a = space.grid.CellOf(Point2(0.1, 0.1));
  const CellId b = space.grid.CellOf(Point2(0.6, 0.6));
  const Pattern p({std::vector<CellId>{a, b}});
  const double lm = WindowLogMatch(d[0].points(), 0, p, space);
  NmEngine engine(d, space);
  EXPECT_NEAR(engine.MatchTotal(p), std::exp(lm), 1e-12);
}

// ---------------------------------------------------------------------------
// Property suites: the paper's structural claims, checked over random data.
// ---------------------------------------------------------------------------

class NmPropertyTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, NmPropertyTest, ::testing::Range(1, 9));

// Property 1 of the paper: NM(P' . P'') <= max(NM(P'), NM(P'')).
TEST_P(NmPropertyTest, MinMaxPropertyHolds) {
  const int seed = GetParam();
  const UniformGeneratorOptions gopt{.num_objects = 8,
                                     .num_snapshots = 15,
                                     .seed = static_cast<uint64_t>(seed)};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space = TestSpace(4, 0.12);
  NmEngine engine(d, space);
  const auto cells = engine.TouchedCells();
  ASSERT_GE(cells.size(), 2u);

  Rng rng(seed * 977);
  for (int trial = 0; trial < 40; ++trial) {
    auto random_pattern = [&](int max_len) {
      const int len = rng.UniformInt(1, max_len);
      std::vector<CellId> cs(len);
      for (auto& c : cs) {
        c = cells[rng.UniformInt(0, static_cast<int>(cells.size()) - 1)];
      }
      return Pattern(cs);
    };
    const Pattern left = random_pattern(3);
    const Pattern right = random_pattern(3);
    const double nm_left = engine.NmTotal(left);
    const double nm_right = engine.NmTotal(right);
    const double nm_cat = engine.NmTotal(left.Concat(right));
    EXPECT_LE(nm_cat, std::max(nm_left, nm_right) + 1e-9)
        << "left=" << left.ToString() << " right=" << right.ToString();
  }
}

// The Apriori property holds for match (but not for NM): a super-pattern
// never has larger match than any contiguous sub-pattern.
TEST_P(NmPropertyTest, AprioriHoldsForMatch) {
  const int seed = GetParam();
  const UniformGeneratorOptions gopt{.num_objects = 8,
                                     .num_snapshots = 15,
                                     .seed = static_cast<uint64_t>(seed + 100)};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space = TestSpace(4, 0.12);
  NmEngine engine(d, space);
  const auto cells = engine.TouchedCells();
  ASSERT_GE(cells.size(), 2u);

  Rng rng(seed * 1231);
  for (int trial = 0; trial < 25; ++trial) {
    const int len = rng.UniformInt(2, 4);
    std::vector<CellId> cs(len);
    for (auto& c : cs) {
      c = cells[rng.UniformInt(0, static_cast<int>(cells.size()) - 1)];
    }
    const Pattern p(cs);
    const double match_p = engine.MatchTotal(p);
    for (size_t begin = 0; begin < p.length(); ++begin) {
      for (size_t sub_len = 1; begin + sub_len <= p.length(); ++sub_len) {
        const Pattern sub = p.SubPattern(begin, sub_len);
        EXPECT_LE(match_p, engine.MatchTotal(sub) + 1e-12)
            << "p=" << p.ToString() << " sub=" << sub.ToString();
      }
    }
  }
}

// NM values of real (non-floor) patterns lie in [LogFloor(), 0] per
// trajectory, so dataset NM is bounded by trajectory count times that.
TEST_P(NmPropertyTest, NmBounds) {
  const int seed = GetParam();
  const UniformGeneratorOptions gopt{.num_objects = 6,
                                     .num_snapshots = 10,
                                     .seed = static_cast<uint64_t>(seed + 300)};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space = TestSpace(4, 0.12);
  NmEngine engine(d, space);
  const auto cells = engine.TouchedCells();
  Rng rng(seed * 31);
  for (int trial = 0; trial < 20; ++trial) {
    const int len = rng.UniformInt(1, 3);
    std::vector<CellId> cs(len);
    for (auto& c : cs) {
      c = cells[rng.UniformInt(0, static_cast<int>(cells.size()) - 1)];
    }
    const double nm = engine.NmTotal(Pattern(cs));
    EXPECT_LE(nm, 0.0);
    EXPECT_GE(nm, LogFloor() * static_cast<double>(d.size()));
  }
}

}  // namespace
}  // namespace trajpattern
