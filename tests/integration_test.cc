#include <gtest/gtest.h>

#include <memory>

#include "core/miner.h"
#include "core/nm_engine.h"
#include "core/pattern_group.h"
#include "datagen/bus_generator.h"
#include "datagen/planted_generator.h"
#include "datagen/zebranet_generator.h"
#include "prediction/dead_reckoning.h"
#include "prediction/motion_model.h"
#include "prediction/pattern_assisted.h"
#include "trajectory/transform.h"

namespace trajpattern {
namespace {

/// End-to-end pipeline of the paper on a small bus workload: location
/// traces -> velocity trajectories -> TrajPattern mining -> pattern
/// groups -> pattern-assisted dead reckoning, checking the Fig. 3 effect
/// (fewer mis-predictions with patterns than without).
TEST(IntegrationTest, BusPipelineReducesMispredictions) {
  BusGeneratorOptions bopt;
  bopt.num_routes = 2;
  bopt.buses_per_route = 5;
  bopt.num_days = 4;
  bopt.num_snapshots = 60;
  bopt.speed_noise = 0.05;
  bopt.gps_noise = 0.001;
  bopt.sigma = 0.004;
  bopt.seed = 42;
  const TrajectoryDataset traces = GenerateBusTraces(bopt);
  const size_t test_count = static_cast<size_t>(bopt.num_routes) *
                            bopt.buses_per_route;  // last day
  const auto [train, test] = traces.Split(traces.size() - test_count);

  // Velocity trajectories over a shared velocity grid.
  const TrajectoryDataset train_vel = ToVelocityTrajectories(train);
  BoundingBox vbox = train_vel.MeanBoundingBox(0.01);
  const Grid vgrid(vbox, 16, 16);
  const double delta =
      std::max(vgrid.cell_width(), vgrid.cell_height());
  const MiningSpace vspace(vgrid, delta);
  NmEngine engine(train_vel, vspace);

  MinerOptions mopt;
  mopt.k = 40;
  mopt.min_length = 3;
  mopt.max_pattern_length = 5;
  mopt.max_candidates_per_iteration = 4000;
  const MiningResult mined = MineTrajPatterns(engine, mopt);
  ASSERT_FALSE(mined.patterns.empty());

  // Pattern groups compress the output; every mined pattern must appear
  // in exactly one group.
  const auto groups =
      GroupPatterns(mined.patterns, vgrid, 3.0 * bopt.sigma);
  size_t grouped = 0;
  for (const auto& g : groups) grouped += g.size();
  EXPECT_EQ(grouped, mined.patterns.size());
  EXPECT_LE(groups.size(), mined.patterns.size());

  // Prediction: base linear model vs. pattern-assisted.
  DeadReckoningOptions dopt;
  dopt.uncertainty = 0.012;
  dopt.c = 2.0;
  const PredictionEvaluation base =
      EvaluatePrediction(test, LinearModel(), dopt);

  PatternAssistOptions popt;
  popt.confirm_threshold = 0.6;
  popt.min_confirm_length = 2;
  // Velocity observation noise: GPS noise on two consecutive fixes.
  popt.velocity_sigma = bopt.gps_noise * std::sqrt(2.0);
  const PatternAssistedModel assisted(std::make_unique<LinearModel>(),
                                      mined.patterns, vspace, popt);
  const PredictionEvaluation with_patterns =
      EvaluatePrediction(test, assisted, dopt);

  EXPECT_GT(base.mispredictions, 0);
  // The paper's Fig. 3 effect: patterns reduce mis-predictions.
  EXPECT_LT(with_patterns.mispredictions, base.mispredictions);
}

/// Full §3.1 -> §3.2 loop: the server's dead-reckoned view of reporting
/// objects (reports + accepted predictions, sigma = U/c) is itself the
/// mining input format, and mining it recovers the planted motif that
/// mining the raw traces recovers.
TEST(IntegrationTest, ServerViewIsMineable) {
  PlantedPatternOptions popt;
  popt.pattern = {Point2(0.125, 0.125), Point2(0.375, 0.375),
                  Point2(0.625, 0.625)};
  popt.num_with_pattern = 20;
  popt.num_background = 5;
  popt.num_snapshots = 12;
  popt.embed_noise = 0.002;
  popt.sigma = 0.0;  // the generator output is the ACTUAL movement here
  popt.seed = 77;
  const TrajectoryDataset actual = GeneratePlantedPatterns(popt);

  // Replay every trajectory through the reporting scheme; collect the
  // imprecise server views.
  DeadReckoningOptions dopt;
  dopt.uncertainty = 0.02;
  dopt.c = 2.0;
  TrajectoryDataset server_views;
  int total_reports = 0;
  for (const auto& t : actual) {
    LinearModel lm;
    DeadReckoningResult r = SimulateDeadReckoning(t, &lm, dopt);
    total_reports += r.mispredictions;
    server_views.Add(std::move(r.server_view));
  }
  EXPECT_GT(total_reports, 0);  // random motion cannot be dead-reckoned

  const MiningSpace space(Grid::UnitSquare(4), 0.08);
  NmEngine engine(server_views, space);
  MinerOptions mopt;
  mopt.k = 10;
  mopt.min_length = 3;
  mopt.max_pattern_length = 3;
  const MiningResult mined = MineTrajPatterns(engine, mopt);
  ASSERT_FALSE(mined.patterns.empty());
  std::vector<CellId> expected;
  for (const auto& p : popt.pattern) {
    expected.push_back(space.grid.CellOf(p));
  }
  EXPECT_EQ(mined.patterns[0].pattern, Pattern(expected));
}

/// ZebraNet pipeline: group movement produces mineable patterns, and the
/// miner output is stable and well-formed end to end.
TEST(IntegrationTest, ZebraPipelineProducesGroupedPatterns) {
  ZebraNetGeneratorOptions zopt;
  zopt.num_zebras = 30;
  zopt.num_groups = 3;
  zopt.num_snapshots = 40;
  zopt.seed = 7;
  const TrajectoryDataset traces = GenerateZebraNet(zopt);
  const TrajectoryDataset vel = ToVelocityTrajectories(traces);
  const BoundingBox vbox = vel.MeanBoundingBox(0.005);
  const Grid vgrid(vbox, 16, 16);
  const MiningSpace vspace(
      vgrid, std::max(vgrid.cell_width(), vgrid.cell_height()));
  NmEngine engine(vel, vspace);

  MinerOptions mopt;
  mopt.k = 20;
  mopt.max_pattern_length = 4;
  mopt.max_candidates_per_iteration = 3000;
  const MiningResult mined = MineTrajPatterns(engine, mopt);
  ASSERT_EQ(mined.patterns.size(), 20u);
  for (size_t i = 1; i < mined.patterns.size(); ++i) {
    EXPECT_GE(mined.patterns[i - 1].nm, mined.patterns[i].nm);
  }

  const auto groups = GroupPatterns(
      mined.patterns, vgrid,
      2.0 * std::max(vgrid.cell_width(), vgrid.cell_height()));
  size_t grouped = 0;
  for (const auto& g : groups) grouped += g.size();
  EXPECT_EQ(grouped, mined.patterns.size());
}

}  // namespace
}  // namespace trajpattern
