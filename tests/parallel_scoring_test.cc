// Coverage for the parallel batch-scoring layer: the thread pool /
// ParallelFor substrate, NmTotalBatch / MatchTotalBatch equivalence with
// the serial entry points (bit-identical, including patterns longer than
// some trajectories and wildcard patterns), the warm-up contract, and
// end-to-end miner determinism across thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "baseline/match_apriori.h"
#include "baseline/pb_miner.h"
#include "core/miner.h"
#include "core/nm_engine.h"
#include "datagen/planted_generator.h"
#include "datagen/uniform_generator.h"
#include "parallel/thread_pool.h"
#include "prob/rng.h"

namespace trajpattern {
namespace {

// ---------------------------------------------------------------------
// ThreadPool / ParallelFor substrate.

TEST(ThreadPoolTest, ResolveThreadCountSemantics) {
  EXPECT_GE(ResolveThreadCount(0), 1);  // 0 = hardware concurrency
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
}

TEST(ThreadPoolTest, RunsEverySubmittedTaskAndIsReusable) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 100 * (round + 1));
  }
}

TEST(ThreadPoolTest, ParallelForCoversEachItemExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  // Each item is written by exactly one lane, so plain ints suffice; a
  // double-visit would show up as a count of 2.
  std::vector<int> visits(kN, 0);
  std::vector<std::atomic<int>> lane_hits(4);
  ParallelFor(&pool, kN, [&](size_t item, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    ++visits[item];
    lane_hits[static_cast<size_t>(worker)].fetch_add(1);
  });
  int total = 0;
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i], 1) << "item " << i;
    total += visits[i];
  }
  EXPECT_EQ(total, static_cast<int>(kN));
}

TEST(ThreadPoolTest, ParallelForInlineFallback) {
  std::vector<int> visits(10, 0);
  ParallelFor(nullptr, visits.size(), [&](size_t item, int worker) {
    EXPECT_EQ(worker, 0);  // null pool = inline serial on the caller
    ++visits[item];
  });
  for (int v : visits) EXPECT_EQ(v, 1);
  ParallelFor(nullptr, 0, [&](size_t, int) { FAIL() << "n = 0 ran a body"; });
}

// ---------------------------------------------------------------------
// Batch scoring equivalence.

/// Mixed-length dataset (3..12 snapshots) so that long patterns overhang
/// some trajectories, plus enough spatial spread to touch many cells.
TrajectoryDataset MixedLengthData() {
  TrajectoryDataset d;
  Rng rng(41);
  for (int t = 0; t < 12; ++t) {
    Trajectory traj("t" + std::to_string(t));
    const int len = 3 + (t * 7) % 10;  // 3..12
    double x = rng.Uniform(0.1, 0.9);
    double y = rng.Uniform(0.1, 0.9);
    for (int s = 0; s < len; ++s) {
      x = std::clamp(x + rng.Normal(0.0, 0.05), 0.0, 1.0);
      y = std::clamp(y + rng.Normal(0.0, 0.05), 0.0, 1.0);
      traj.Append(Point2(x, y), 0.01);
    }
    d.Add(std::move(traj));
  }
  return d;
}

/// Random patterns over the touched alphabet, lengths 1..6 (longer than
/// the shortest trajectories), every third multi-cell one with an inner
/// wildcard.
std::vector<Pattern> RandomPatterns(const NmEngine& engine, int count) {
  const std::vector<CellId> cells = engine.TouchedCells();
  Rng rng(97);
  std::vector<Pattern> out;
  for (int i = 0; i < count; ++i) {
    const int len = rng.UniformInt(1, 6);
    std::vector<CellId> ids;
    for (int j = 0; j < len; ++j) {
      ids.push_back(cells[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int>(cells.size()) - 1))]);
    }
    if (len >= 3 && i % 3 == 0) ids[1] = kWildcardCell;
    out.emplace_back(std::move(ids));
  }
  return out;
}

void ExpectBitIdentical(double got, double want, const char* what, size_t i) {
  EXPECT_EQ(std::bit_cast<uint64_t>(got), std::bit_cast<uint64_t>(want))
      << what << " diverged at pattern " << i << ": " << got << " vs " << want;
}

TEST(NmTotalBatchTest, BitIdenticalToSerialAcrossThreadCounts) {
  const TrajectoryDataset d = MixedLengthData();
  const MiningSpace space(Grid::UnitSquare(8), 0.1);
  NmEngine serial_engine(d, space);
  const std::vector<Pattern> patterns = RandomPatterns(serial_engine, 40);
  std::vector<double> want;
  for (const auto& p : patterns) want.push_back(serial_engine.NmTotal(p));

  for (int threads : {1, 4}) {
    NmEngine batch_engine(d, space);  // fresh: warm-up must do all the work
    const std::vector<double> got =
        batch_engine.NmTotalBatch(patterns, threads);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      ExpectBitIdentical(got[i], want[i], "NmTotalBatch", i);
    }
  }
}

TEST(NmTotalBatchTest, MatchTotalBatchBitIdenticalToSerial) {
  const TrajectoryDataset d = MixedLengthData();
  const MiningSpace space(Grid::UnitSquare(8), 0.1);
  NmEngine serial_engine(d, space);
  const std::vector<Pattern> patterns = RandomPatterns(serial_engine, 40);
  std::vector<double> want;
  for (const auto& p : patterns) want.push_back(serial_engine.MatchTotal(p));

  for (int threads : {1, 4}) {
    NmEngine batch_engine(d, space);
    const std::vector<double> got =
        batch_engine.MatchTotalBatch(patterns, threads);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      ExpectBitIdentical(got[i], want[i], "MatchTotalBatch", i);
    }
  }
}

TEST(NmTotalBatchTest, PatternLongerThanEveryTrajectoryScoresLogFloorSum) {
  const TrajectoryDataset d = MixedLengthData();  // max length 12
  const MiningSpace space(Grid::UnitSquare(8), 0.1);
  NmEngine engine(d, space);
  const std::vector<CellId> cells = engine.TouchedCells();
  const Pattern too_long(std::vector<CellId>(20, cells[0]));
  const std::vector<double> got = engine.NmTotalBatch({too_long}, 4);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0], static_cast<double>(d.size()) * LogFloor());
}

TEST(NmTotalBatchTest, WarmupStatsAndIdempotence) {
  const TrajectoryDataset d = MixedLengthData();
  const MiningSpace space(Grid::UnitSquare(8), 0.1);
  NmEngine engine(d, space);
  const std::vector<Pattern> patterns = RandomPatterns(engine, 20);

  BatchScoreStats first;
  engine.NmTotalBatch(patterns, 4, &first);
  EXPECT_GT(first.cells_warmed, 0u);
  EXPECT_EQ(first.cells_warmed, engine.num_cached_cells());
  EXPECT_EQ(first.threads_used, 4);
  EXPECT_GE(first.warmup_seconds, 0.0);
  EXPECT_GE(first.scoring_seconds, 0.0);

  BatchScoreStats second;
  engine.NmTotalBatch(patterns, 4, &second);
  EXPECT_EQ(second.cells_warmed, 0u);  // everything already cached

  // WarmCells alone is likewise idempotent and dedupes its input.
  std::vector<CellId> cells = engine.TouchedCells();
  cells.insert(cells.end(), cells.begin(), cells.end());
  const size_t added = engine.WarmCells(cells, 2);
  EXPECT_EQ(engine.num_cached_cells(),
            first.cells_warmed + added);
  EXPECT_EQ(engine.WarmCells(cells, 2), 0u);
}

TEST(NmTotalBatchTest, EmptyBatchIsANoOp) {
  const TrajectoryDataset d = MixedLengthData();
  const MiningSpace space(Grid::UnitSquare(8), 0.1);
  NmEngine engine(d, space);
  BatchScoreStats stats;
  EXPECT_TRUE(engine.NmTotalBatch({}, 4, &stats).empty());
  EXPECT_EQ(stats.cells_warmed, 0u);
}

// ---------------------------------------------------------------------
// End-to-end miner determinism across thread counts.

TrajectoryDataset PlantedData() {
  PlantedPatternOptions popt;
  popt.pattern = {Point2(0.125, 0.125), Point2(0.375, 0.375),
                  Point2(0.625, 0.625)};
  popt.num_with_pattern = 18;
  popt.num_background = 6;
  popt.num_snapshots = 12;
  popt.embed_noise = 0.002;
  popt.sigma = 0.01;
  popt.seed = 9;
  return GeneratePlantedPatterns(popt);
}

void ExpectIdenticalMiningResults(const MiningResult& a,
                                  const MiningResult& b) {
  ASSERT_EQ(a.patterns.size(), b.patterns.size());
  for (size_t i = 0; i < a.patterns.size(); ++i) {
    EXPECT_EQ(a.patterns[i].pattern, b.patterns[i].pattern)
        << "rank " << i << ": " << a.patterns[i].pattern.ToString() << " vs "
        << b.patterns[i].pattern.ToString();
    ExpectBitIdentical(a.patterns[i].nm, b.patterns[i].nm, "miner NM", i);
  }
  EXPECT_EQ(a.stats.candidates_evaluated, b.stats.candidates_evaluated);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
}

class MinerThreadDeterminismTest : public ::testing::Test {
 protected:
  MiningResult MineWith(const MinerOptions& base, int threads) {
    const TrajectoryDataset d = PlantedData();
    const MiningSpace space(Grid::UnitSquare(4), 0.08);
    NmEngine engine(d, space);
    MinerOptions opt = base;
    opt.num_threads = threads;
    return MineTrajPatterns(engine, opt);
  }

  void ExpectThreadInvariant(const MinerOptions& base) {
    const MiningResult serial = MineWith(base, 1);
    const MiningResult parallel = MineWith(base, 8);
    EXPECT_EQ(parallel.stats.threads_used, 8);
    ExpectIdenticalMiningResults(serial, parallel);
  }
};

TEST_F(MinerThreadDeterminismTest, PlainMining) {
  MinerOptions opt;
  opt.k = 10;
  opt.max_pattern_length = 4;
  ExpectThreadInvariant(opt);
}

TEST_F(MinerThreadDeterminismTest, MinLengthVariant) {
  MinerOptions opt;
  opt.k = 8;
  opt.min_length = 3;
  opt.max_pattern_length = 4;
  ExpectThreadInvariant(opt);
}

TEST_F(MinerThreadDeterminismTest, WildcardVariant) {
  MinerOptions opt;
  opt.k = 8;
  opt.max_wildcards = 1;
  opt.max_pattern_length = 4;
  ExpectThreadInvariant(opt);
}

TEST_F(MinerThreadDeterminismTest, BeamVariant) {
  MinerOptions opt;
  opt.k = 8;
  opt.max_pattern_length = 4;
  opt.max_candidates_per_iteration = 32;
  ExpectThreadInvariant(opt);
}

TEST_F(MinerThreadDeterminismTest, HardwareConcurrencyAlias) {
  // num_threads = 0 (use the hardware) must mine the same answer too.
  MinerOptions opt;
  opt.k = 6;
  opt.max_pattern_length = 3;
  const MiningResult serial = MineWith(opt, 1);
  const MiningResult automatic = MineWith(opt, 0);
  EXPECT_GE(automatic.stats.threads_used, 1);
  ExpectIdenticalMiningResults(serial, automatic);
}

TEST(BaselineThreadDeterminismTest, PbMinerThreadInvariant) {
  const UniformGeneratorOptions gopt{.num_objects = 6,
                                     .num_snapshots = 10,
                                     .sigma = 0.02,
                                     .seed = 11};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space(Grid::UnitSquare(3), 0.15);
  PbMinerOptions opt;
  opt.k = 6;
  opt.max_length = 3;
  NmEngine e1(d, space);
  opt.num_threads = 1;
  const PbMiningResult serial = MinePbPatterns(e1, opt);
  NmEngine e2(d, space);
  opt.num_threads = 8;
  const PbMiningResult parallel = MinePbPatterns(e2, opt);
  ASSERT_EQ(serial.patterns.size(), parallel.patterns.size());
  for (size_t i = 0; i < serial.patterns.size(); ++i) {
    EXPECT_EQ(serial.patterns[i].pattern, parallel.patterns[i].pattern);
    ExpectBitIdentical(serial.patterns[i].nm, parallel.patterns[i].nm,
                       "PB NM", i);
  }
  EXPECT_EQ(serial.stats.candidates_evaluated, parallel.stats.candidates_evaluated);
}

TEST(BaselineThreadDeterminismTest, MatchAprioriThreadInvariant) {
  const UniformGeneratorOptions gopt{.num_objects = 6,
                                     .num_snapshots = 10,
                                     .sigma = 0.02,
                                     .seed = 13};
  const TrajectoryDataset d = GenerateUniformObjects(gopt);
  const MiningSpace space(Grid::UnitSquare(3), 0.15);
  MatchMinerOptions opt;
  opt.k = 6;
  opt.max_length = 3;
  NmEngine e1(d, space);
  opt.num_threads = 1;
  const MatchMiningResult serial = MineMatchPatterns(e1, opt);
  NmEngine e2(d, space);
  opt.num_threads = 8;
  const MatchMiningResult parallel = MineMatchPatterns(e2, opt);
  ASSERT_EQ(serial.patterns.size(), parallel.patterns.size());
  for (size_t i = 0; i < serial.patterns.size(); ++i) {
    EXPECT_EQ(serial.patterns[i].pattern, parallel.patterns[i].pattern);
    ExpectBitIdentical(serial.patterns[i].nm, parallel.patterns[i].nm,
                       "match", i);
  }
  EXPECT_EQ(serial.stats.candidates_evaluated,
            parallel.stats.candidates_evaluated);
}

TEST(MinerStatsTest, TimingSplitsReported) {
  const TrajectoryDataset d = PlantedData();
  const MiningSpace space(Grid::UnitSquare(4), 0.08);
  NmEngine engine(d, space);
  MinerOptions opt;
  opt.k = 5;
  opt.max_pattern_length = 3;
  opt.num_threads = 2;
  const MiningResult result = MineTrajPatterns(engine, opt);
  EXPECT_EQ(result.stats.threads_used, 2);
  EXPECT_GE(result.stats.warmup_seconds, 0.0);
  EXPECT_GE(result.stats.scoring_seconds, 0.0);
  EXPECT_LE(result.stats.warmup_seconds + result.stats.scoring_seconds,
            result.stats.seconds + 1e-6);
  EXPECT_EQ(result.stats.cells_cached, engine.num_cached_cells());
  EXPECT_GT(result.stats.cells_cached, 0u);
}

}  // namespace
}  // namespace trajpattern
