#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/pattern.h"
#include "io/ascii_art.h"
#include "io/csv.h"
#include "io/flags.h"

namespace trajpattern {
namespace {

TrajectoryDataset SampleData() {
  TrajectoryDataset d;
  Trajectory a("bus_1");
  a.Append(Point2(0.125, 0.25), 0.01);
  a.Append(Point2(0.5, 0.75), 0.02);
  Trajectory b("bus_2");
  b.Append(Point2(-1.5, 3.25), 0.005);
  d.Add(std::move(a));
  d.Add(std::move(b));
  return d;
}

TEST(CsvTest, TrajectoriesRoundTrip) {
  const TrajectoryDataset d = SampleData();
  std::stringstream ss;
  WriteTrajectoriesCsv(d, ss);
  TrajectoryDataset back;
  ASSERT_TRUE(ReadTrajectoriesCsv(ss, &back));
  ASSERT_EQ(back.size(), d.size());
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(back[i].id(), d[i].id());
    ASSERT_EQ(back[i].size(), d[i].size());
    for (size_t s = 0; s < d[i].size(); ++s) {
      EXPECT_DOUBLE_EQ(back[i][s].mean.x, d[i][s].mean.x);
      EXPECT_DOUBLE_EQ(back[i][s].mean.y, d[i][s].mean.y);
      EXPECT_DOUBLE_EQ(back[i][s].sigma, d[i][s].sigma);
    }
  }
}

TEST(CsvTest, RejectsMalformedRows) {
  std::stringstream ss("traj_id,snapshot,x,y,sigma\nbad,row\n");
  TrajectoryDataset out;
  EXPECT_FALSE(ReadTrajectoriesCsv(ss, &out));
  std::stringstream ss2("traj_id,snapshot,x,y,sigma\na,0,notanumber,0,0\n");
  EXPECT_FALSE(ReadTrajectoriesCsv(ss2, &out));
}

TEST(CsvTest, EmptyDatasetRoundTrip) {
  std::stringstream ss;
  WriteTrajectoriesCsv(TrajectoryDataset(), ss);
  TrajectoryDataset back;
  ASSERT_TRUE(ReadTrajectoriesCsv(ss, &back));
  EXPECT_TRUE(back.empty());
}

TEST(CsvTest, FileRoundTrip) {
  const TrajectoryDataset d = SampleData();
  const std::string path = ::testing::TempDir() + "/traj_io_test.csv";
  ASSERT_TRUE(WriteTrajectoriesCsvFile(d, path));
  TrajectoryDataset back;
  ASSERT_TRUE(ReadTrajectoriesCsvFile(path, &back));
  EXPECT_EQ(back.size(), d.size());
}

TEST(CsvTest, MissingFileFails) {
  TrajectoryDataset out;
  EXPECT_FALSE(ReadTrajectoriesCsvFile("/nonexistent/nope.csv", &out));
}

TEST(CsvTest, PatternsRoundTripWithWildcards) {
  std::vector<ScoredPattern> ps = {
      {Pattern(std::vector<CellId>{3, kWildcardCell, 7}), -1.25},
      {Pattern(std::vector<CellId>{0}), -0.5},
  };
  std::stringstream ss;
  WritePatternsCsv(ps, ss);
  std::vector<ScoredPattern> back;
  ASSERT_TRUE(ReadPatternsCsv(ss, &back));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].pattern, ps[0].pattern);
  EXPECT_DOUBLE_EQ(back[0].nm, -1.25);
  EXPECT_EQ(back[1].pattern, ps[1].pattern);
}

TEST(CsvTest, PatternGroupsRoundTrip) {
  std::vector<PatternGroup> groups(2);
  groups[0].members = {{Pattern(std::vector<CellId>{1, 2}), -0.5},
                       {Pattern(std::vector<CellId>{1, 3}), -0.7}};
  groups[1].members = {{Pattern(std::vector<CellId>{9, kWildcardCell, 9}),
                        -1.5}};
  std::stringstream ss;
  WritePatternGroupsCsv(groups, ss);
  std::vector<PatternGroup> back;
  ASSERT_TRUE(ReadPatternGroupsCsv(ss, &back));
  ASSERT_EQ(back.size(), 2u);
  ASSERT_EQ(back[0].members.size(), 2u);
  ASSERT_EQ(back[1].members.size(), 1u);
  EXPECT_EQ(back[0].members[1].pattern, groups[0].members[1].pattern);
  EXPECT_DOUBLE_EQ(back[0].members[1].nm, -0.7);
  EXPECT_EQ(back[1].members[0].pattern, groups[1].members[0].pattern);
}

TEST(CsvTest, PatternGroupsRejectNonContiguousGroups) {
  std::stringstream ss(
      "group,member,nm,length,cells\n"
      "1,1,-0.5,1,3\n"
      "3,1,-0.5,1,4\n");  // group 2 missing
  std::vector<PatternGroup> out;
  EXPECT_FALSE(ReadPatternGroupsCsv(ss, &out));
}

TEST(PatternTest, ToStringRendersCellsAndWildcards) {
  const Pattern p(std::vector<CellId>{3, kWildcardCell, 7});
  EXPECT_EQ(p.ToString(), "(c3, *, c7)");
}

TEST(PatternTest, SuperPatternDetection) {
  const Pattern p(std::vector<CellId>{1, 2, 3, 4});
  EXPECT_TRUE(p.IsSuperPatternOf(Pattern(std::vector<CellId>{2, 3})));
  EXPECT_TRUE(p.IsSuperPatternOf(p));
  EXPECT_FALSE(p.IsSuperPatternOf(Pattern(std::vector<CellId>{2, 4})));
  EXPECT_FALSE(
      Pattern(std::vector<CellId>{2, 3}).IsSuperPatternOf(p));
}

TEST(PatternTest, ConcatAndDrop) {
  const Pattern a(std::vector<CellId>{1, 2});
  const Pattern b(std::vector<CellId>{3});
  const Pattern c = a.Concat(b);
  EXPECT_EQ(c, Pattern(std::vector<CellId>{1, 2, 3}));
  EXPECT_EQ(c.DropFirst(), Pattern(std::vector<CellId>{2, 3}));
  EXPECT_EQ(c.DropLast(), a);
}

TEST(PatternTest, HashDistinguishesOrder) {
  PatternHash h;
  const Pattern a(std::vector<CellId>{1, 2});
  const Pattern b(std::vector<CellId>{2, 1});
  EXPECT_NE(h(a), h(b));
  EXPECT_EQ(h(a), h(Pattern(std::vector<CellId>{1, 2})));
}

TEST(AsciiArtTest, DensityMarksOccupiedCells) {
  const Grid grid = Grid::UnitSquare(4);
  TrajectoryDataset d;
  Trajectory t("a");
  for (int i = 0; i < 10; ++i) t.Append(Point2(0.1, 0.1), 0.0);  // cell (0,0)
  t.Append(Point2(0.9, 0.9), 0.0);                               // cell (3,3)
  d.Add(std::move(t));
  const std::string art = RenderDensity(d, grid);
  // Frame: 4+2 columns (+ newline) by 4+2 rows.
  const std::vector<std::string> lines = [&] {
    std::vector<std::string> out;
    std::istringstream is(art);
    std::string line;
    while (std::getline(is, line)) out.push_back(line);
    return out;
  }();
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_EQ(lines[0], "+----+");
  // Top row holds the (3,3) cell's single point; bottom row the dense
  // (0,0) cell, which must use the hottest ramp character.
  EXPECT_NE(lines[1][4], ' ');
  EXPECT_EQ(lines[4][1], '@');
  // Empty cells are blank.
  EXPECT_EQ(lines[2][2], ' ');
}

TEST(AsciiArtTest, PatternLabelsSequenceOrder) {
  const Grid grid = Grid::UnitSquare(4);
  const Pattern p(std::vector<CellId>{grid.At(0, 0), kWildcardCell,
                                      grid.At(3, 3), grid.At(0, 0)});
  const std::string art = RenderPattern(p, grid);
  std::vector<std::string> lines;
  {
    std::istringstream is(art);
    std::string line;
    while (std::getline(is, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 6u);
  // Position 1 and 3 share cell (0,0) -> '*'; position 2 at (3,3) -> '2'
  // (the wildcard is skipped and does not consume a label).
  EXPECT_EQ(lines[4][1], '*');
  EXPECT_EQ(lines[1][4], '2');
  EXPECT_EQ(lines[2][2], '.');
}

TEST(FlagsTest, ParsesTypedValues) {
  const char* argv[] = {"prog", "--k=25", "--delta=0.5", "--name=zebra",
                        "--fast", "--off=false"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("k", 1), 25);
  EXPECT_DOUBLE_EQ(flags.GetDouble("delta", 0.0), 0.5);
  EXPECT_EQ(flags.GetString("name", ""), "zebra");
  EXPECT_TRUE(flags.GetBool("fast", false));
  EXPECT_FALSE(flags.GetBool("off", true));
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_TRUE(flags.Has("k"));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, IgnoresNonFlagArguments) {
  const char* argv[] = {"prog", "positional", "-x", "--ok=1"};
  Flags flags(4, const_cast<char**>(argv));
  EXPECT_FALSE(flags.Has("positional"));
  EXPECT_FALSE(flags.Has("x"));
  EXPECT_TRUE(flags.Has("ok"));
}

}  // namespace
}  // namespace trajpattern
