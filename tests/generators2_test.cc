#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "core/miner.h"
#include "core/nm_engine.h"
#include "datagen/network_generator.h"
#include "datagen/posture_generator.h"
#include "geometry/bounding_box.h"

namespace trajpattern {
namespace {

TEST(RoadNetworkTest, StructureIsSoundAndConnected) {
  NetworkGeneratorOptions opt;
  opt.num_nodes = 30;
  opt.degree = 3;
  opt.seed = 3;
  const RoadNetwork net = BuildRoadNetwork(opt);
  ASSERT_EQ(net.nodes.size(), 30u);
  ASSERT_EQ(net.edges.size(), 30u);
  // Symmetry and no self loops.
  for (int a = 0; a < 30; ++a) {
    for (int b : net.edges[a]) {
      EXPECT_NE(a, b);
      EXPECT_NE(std::find(net.edges[b].begin(), net.edges[b].end(), a),
                net.edges[b].end());
    }
    EXPECT_GE(net.edges[a].size(), 1u);
  }
  // Connectivity: BFS from node 0 reaches everything.
  std::vector<bool> seen(30, false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int count = 0;
  while (!stack.empty()) {
    const int n = stack.back();
    stack.pop_back();
    ++count;
    for (int m : net.edges[n]) {
      if (!seen[m]) {
        seen[m] = true;
        stack.push_back(m);
      }
    }
  }
  EXPECT_EQ(count, 30);
}

TEST(NetworkGeneratorTest, ObjectsStayNearTheNetwork) {
  NetworkGeneratorOptions opt;
  opt.num_objects = 20;
  opt.num_snapshots = 40;
  opt.position_noise = 0.0005;
  opt.seed = 5;
  const RoadNetwork net = BuildRoadNetwork(opt);
  const TrajectoryDataset d = GenerateNetworkObjects(opt);
  ASSERT_EQ(d.size(), 20u);
  // Every emitted point lies close to some edge segment.
  auto dist_to_segment = [](const Point2& p, const Point2& a,
                            const Point2& b) {
    const Vec2 ab = b - a;
    const double len2 = ab.x * ab.x + ab.y * ab.y;
    double t = len2 > 0 ? ((p.x - a.x) * ab.x + (p.y - a.y) * ab.y) / len2
                        : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    return Distance(p, a + ab * t);
  };
  for (const auto& t : d) {
    ASSERT_EQ(t.size(), 40u);
    for (const auto& pt : t) {
      double best = 1e9;
      for (size_t a = 0; a < net.nodes.size(); ++a) {
        for (int b : net.edges[a]) {
          best = std::min(best, dist_to_segment(pt.mean, net.nodes[a],
                                                net.nodes[b]));
        }
      }
      EXPECT_LT(best, 0.01);
    }
  }
}

TEST(NetworkGeneratorTest, DeterministicPerSeed) {
  NetworkGeneratorOptions opt;
  opt.num_objects = 5;
  opt.num_snapshots = 10;
  opt.seed = 7;
  const TrajectoryDataset a = GenerateNetworkObjects(opt);
  const TrajectoryDataset b = GenerateNetworkObjects(opt);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t s = 0; s < a[i].size(); ++s) {
      EXPECT_EQ(a[i][s].mean, b[i][s].mean);
    }
  }
}

TEST(PostureGeneratorTest, AnchorsOnCircleAndShape) {
  PostureGeneratorOptions opt;
  opt.num_poses = 5;
  opt.num_subjects = 8;
  opt.num_snapshots = 30;
  const auto anchors = PoseAnchors(opt);
  ASSERT_EQ(anchors.size(), 5u);
  for (const auto& a : anchors) {
    EXPECT_NEAR(Distance(a, Point2(0.5, 0.5)), 0.35, 1e-12);
  }
  const TrajectoryDataset d = GeneratePostures(opt);
  ASSERT_EQ(d.size(), 8u);
  for (const auto& t : d) EXPECT_EQ(t.size(), 30u);
}

TEST(PostureGeneratorTest, SnapshotsSitNearSomeAnchor) {
  PostureGeneratorOptions opt;
  opt.pose_noise = 0.005;
  opt.seed = 9;
  const auto anchors = PoseAnchors(opt);
  const TrajectoryDataset d = GeneratePostures(opt);
  for (const auto& t : d) {
    for (const auto& pt : t) {
      double best = 1e9;
      for (const auto& a : anchors) best = std::min(best, Distance(pt.mean, a));
      EXPECT_LT(best, 0.05);
    }
  }
}

TEST(PostureGeneratorTest, CanonicalCycleIsMineable) {
  // With high fidelity the pose cycle dominates; the top length-2 pattern
  // should be a consecutive anchor pair of the cycle.
  PostureGeneratorOptions opt;
  opt.num_poses = 4;
  opt.num_subjects = 30;
  opt.num_snapshots = 40;
  opt.cycle_fidelity = 0.95;
  opt.transition_probability = 0.5;
  opt.pose_noise = 0.005;
  opt.seed = 21;
  const TrajectoryDataset d = GeneratePostures(opt);
  const Grid grid = Grid::UnitSquare(8);
  const MiningSpace space(grid, 0.07);
  NmEngine engine(d, space);
  MinerOptions mopt;
  mopt.k = 6;
  mopt.min_length = 2;
  mopt.max_pattern_length = 2;
  const MiningResult mined = MineTrajPatterns(engine, mopt);
  ASSERT_FALSE(mined.patterns.empty());
  const auto anchors = PoseAnchors(opt);
  std::set<std::pair<CellId, CellId>> valid;
  for (int i = 0; i < opt.num_poses; ++i) {
    const CellId a = grid.CellOf(anchors[i]);
    const CellId b = grid.CellOf(anchors[(i + 1) % opt.num_poses]);
    valid.insert({a, b});
    valid.insert({a, a});  // dwell: the pose persists across snapshots
    valid.insert({b, b});
  }
  const Pattern& best = mined.patterns[0].pattern;
  ASSERT_EQ(best.length(), 2u);
  EXPECT_TRUE(valid.count({best[0], best[1]}) > 0)
      << best.ToString();
}

}  // namespace
}  // namespace trajpattern
