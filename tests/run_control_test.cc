// The run-control layer end to end: RunContext stop semantics, thread
// pool exception capture, cancellation/deadline/memory-budget stops
// across all three miners (typed StopReason, exact best-so-far), and
// the crash-safe MiningSupervisor (sink retry with backoff, injected
// faults, auto-resume).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "baseline/match_apriori.h"
#include "baseline/pb_miner.h"
#include "common/run_context.h"
#include "core/miner.h"
#include "core/nm_engine.h"
#include "datagen/planted_generator.h"
#include "geometry/grid.h"
#include "io/checkpoint.h"
#include "parallel/thread_pool.h"
#include "server/fault_injector.h"
#include "server/mining_supervisor.h"

namespace trajpattern {
namespace {

// ------------------------------------------------------------ RunContext

TEST(RunContextTest, DefaultNeverStops) {
  RunContext run;
  EXPECT_EQ(run.CheckStop(), StopReason::kNone);
  EXPECT_FALSE(run.StopRequested());
}

TEST(RunContextTest, ExpiredDeadlineFires) {
  RunContext run;
  run.SetDeadlineAfterMillis(-1.0);
  EXPECT_EQ(run.CheckStop(), StopReason::kDeadlineExceeded);
  EXPECT_TRUE(run.StopRequested());
}

TEST(RunContextTest, CancellationWinsOverDeadline) {
  RunContext run;
  run.SetDeadlineAfterMillis(-1.0);
  run.token.Cancel();
  EXPECT_EQ(run.CheckStop(), StopReason::kCancelled);
}

TEST(RunContextTest, TokenCopiesShareOneFlag) {
  RunContext run;
  const CancellationToken copy = run.token;  // the caller's handle
  EXPECT_FALSE(run.StopRequested());
  copy.Cancel();
  EXPECT_EQ(run.CheckStop(), StopReason::kCancelled);
}

TEST(RunContextTest, StopReasonNamesAreStable) {
  EXPECT_STREQ(StopReasonName(StopReason::kNone), "none");
  EXPECT_STREQ(StopReasonName(StopReason::kCancelled), "cancelled");
  EXPECT_STREQ(StopReasonName(StopReason::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(StopReasonName(StopReason::kMemoryBudgetExceeded),
               "memory_budget_exceeded");
  EXPECT_STREQ(StopReasonName(StopReason::kAllocFailed), "alloc_failed");
  EXPECT_STREQ(StopReasonName(StopReason::kWorkCap), "work_cap");
  EXPECT_STREQ(StopReasonName(StopReason::kSinkVeto), "sink_veto");
}

// ------------------------------------------- thread pool exception capture

TEST(ThreadPoolExceptionTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&ran, i] {
      ++ran;
      if (i == 5) throw std::runtime_error("task 5 failed");
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // Remaining queued tasks still ran: one failure does not wedge the
  // round, and the pool stays usable afterwards.
  EXPECT_EQ(ran.load(), 32);
  pool.Submit([&ran] { ++ran; });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(ran.load(), 33);
}

TEST(ThreadPoolExceptionTest, FaultScheduleDrivenWorkerExceptions) {
  // Draw the deterministic fault stream serially (FaultSchedule is not a
  // concurrent object), then let pool tasks consult the pre-drawn mask.
  FaultScheduleOptions fo;
  fo.fail_first = 2;
  fo.fail_rate = 0.25;
  fo.seed = 9;
  FaultSchedule schedule(fo);
  std::vector<char> fail_mask(64);
  for (auto& f : fail_mask) f = schedule.ShouldFail() ? 1 : 0;
  ASSERT_GE(schedule.failures(), 2);  // the unconditional burst

  ThreadPool pool(4);
  for (size_t i = 0; i < fail_mask.size(); ++i) {
    pool.Submit([&fail_mask, i] {
      if (fail_mask[i]) throw std::runtime_error("injected worker fault");
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_NO_THROW(pool.Wait());  // the slot was consumed by the rethrow
}

TEST(ParallelForTest, RethrowsOnCallingThread) {
  ThreadPool pool(4);
  std::atomic<size_t> executed{0};
  EXPECT_THROW(ParallelFor(&pool, 10000,
                           [&executed](size_t i, int) {
                             if (i == 0) throw std::runtime_error("lane died");
                             ++executed;
                           }),
               std::runtime_error);
  // Item 0 never counted, so a full sweep is impossible: the failure was
  // noticed, not papered over.
  EXPECT_LT(executed.load(), 10000u);
  // The pool survives for the next round.
  ParallelFor(&pool, 100, [&executed](size_t, int) { ++executed; });
}

TEST(ParallelForTest, PreCancelledRunsNothing) {
  RunContext run;
  run.token.Cancel();
  std::atomic<size_t> executed{0};
  ThreadPool pool(4);
  ParallelFor(&pool, 1000, [&executed](size_t, int) { ++executed; }, &run);
  EXPECT_EQ(executed.load(), 0u);
  // Serial inline path polls identically.
  ParallelFor(nullptr, 1000, [&executed](size_t, int) { ++executed; }, &run);
  EXPECT_EQ(executed.load(), 0u);
}

TEST(ParallelForTest, SerialPathCancelsMidLoop) {
  RunContext run;
  size_t executed = 0;
  ParallelFor(nullptr, 100,
              [&](size_t i, int) {
                ++executed;
                if (i == 4) run.token.Cancel();
              },
              &run);
  // The poll runs before each claim: items 0..4 execute, 5..99 never do.
  EXPECT_EQ(executed, 5u);
}

// -------------------------------------------------- miner run-control stops

TrajectoryDataset MakeMiningData() {
  PlantedPatternOptions opt;
  opt.pattern = {Point2(0.15, 0.15), Point2(0.45, 0.45), Point2(0.75, 0.75)};
  opt.num_with_pattern = 12;
  opt.num_background = 6;
  opt.num_snapshots = 12;
  opt.seed = 7;
  return GeneratePlantedPatterns(opt);
}

MiningSpace MakeSpace() { return MiningSpace(Grid::UnitSquare(8), 0.125); }

MinerOptions MakeOptions(int num_threads = 1) {
  MinerOptions opt;
  opt.k = 10;
  opt.max_pattern_length = 4;
  opt.num_threads = num_threads;
  return opt;
}

// A deeper workload for boundary-sweep tests: a 5-cell planted chain
// under min_length=2 takes 4 grow iterations to converge, so there are
// real mid-run boundaries to cancel at.
TrajectoryDataset MakeDeepMiningData() {
  PlantedPatternOptions opt;
  opt.pattern = {Point2(0.15, 0.15), Point2(0.35, 0.35), Point2(0.55, 0.55),
                 Point2(0.75, 0.75), Point2(0.95, 0.95)};
  opt.num_with_pattern = 30;
  opt.num_background = 0;
  opt.num_snapshots = 10;
  opt.sigma = 0.005;
  opt.seed = 7;
  return GeneratePlantedPatterns(opt);
}

MinerOptions MakeDeepOptions(int num_threads = 1) {
  MinerOptions opt;
  opt.k = 10;
  opt.min_length = 2;
  opt.max_pattern_length = 5;
  opt.num_threads = num_threads;
  return opt;
}

void ExpectBitIdentical(const std::vector<ScoredPattern>& a,
                        const std::vector<ScoredPattern>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pattern, b[i].pattern) << "rank " << i;
    EXPECT_EQ(std::memcmp(&a[i].nm, &b[i].nm, sizeof(double)), 0)
        << "rank " << i;
  }
}

TEST(MinerRunControlTest, PreCancelledRunStopsWithTypedReason) {
  const TrajectoryDataset data = MakeMiningData();
  MinerOptions opt = MakeOptions();
  opt.run.token.Cancel();
  NmEngine engine(data, MakeSpace());
  const MiningResult result = MineTrajPatterns(engine, opt);
  EXPECT_TRUE(result.stats.aborted);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kCancelled);
}

TEST(MinerRunControlTest, ExpiredDeadlineStopsWithTypedReason) {
  const TrajectoryDataset data = MakeMiningData();
  MinerOptions opt = MakeOptions();
  opt.run.SetDeadlineAfterMillis(-1.0);
  NmEngine engine(data, MakeSpace());
  const MiningResult result = MineTrajPatterns(engine, opt);
  EXPECT_TRUE(result.stats.aborted);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kDeadlineExceeded);
}

TEST(MinerRunControlTest, CancelledBestSoFarIsExactTopKOfCompletedWork) {
  // A run cancelled at iteration boundary B must return exactly what a
  // run capped at B iterations returns — best-so-far means "the exact
  // answer over everything scored so far", never a half-applied batch.
  const TrajectoryDataset data = MakeDeepMiningData();
  const MiningSpace space = MakeSpace();
  const MinerOptions base = MakeDeepOptions();
  NmEngine full_engine(data, space);
  const MiningResult full = MineTrajPatterns(full_engine, base);
  ASSERT_GT(full.stats.iterations, 1);

  for (int stop_after = 1; stop_after < full.stats.iterations; ++stop_after) {
    MinerOptions cancelled = base;
    // Copying options shares the token (that is how callers keep their
    // cancel handle), so each interrupted run needs a fresh context or
    // the trip would poison the reference runs below.
    cancelled.run = RunContext();
    const CancellationToken token = cancelled.run.token;
    cancelled.checkpoint_sink = [token, stop_after](const MinerCheckpoint& cp) {
      if (cp.iteration == stop_after) token.Cancel();
      return true;
    };
    NmEngine engine(data, space);
    const MiningResult partial = MineTrajPatterns(engine, cancelled);
    ASSERT_TRUE(partial.stats.aborted);
    EXPECT_EQ(partial.stats.stop_reason, StopReason::kCancelled);

    MinerOptions capped = base;
    capped.max_iterations = stop_after;
    NmEngine capped_engine(data, space);
    const MiningResult reference = MineTrajPatterns(capped_engine, capped);
    ExpectBitIdentical(partial.patterns, reference.patterns);
  }
}

TEST(MinerRunControlTest, AbortedRunEmitsResumableFinalCheckpoint) {
  // Even when the cancel fires between sink deliveries, the sink ends up
  // holding a boundary checkpoint that resumes to the uninterrupted
  // answer.
  const TrajectoryDataset data = MakeDeepMiningData();
  const MiningSpace space = MakeSpace();
  const MinerOptions base = MakeDeepOptions();
  NmEngine full_engine(data, space);
  const MiningResult full = MineTrajPatterns(full_engine, base);

  MinerOptions cancelled = base;
  cancelled.run = RunContext();  // options copies share the token
  const CancellationToken token = cancelled.run.token;
  MinerCheckpoint captured;
  int deliveries = 0;
  cancelled.checkpoint_sink = [&captured, &deliveries,
                               token](const MinerCheckpoint& cp) {
    captured = cp;
    ++deliveries;
    if (cp.iteration == 1) token.Cancel();
    return true;
  };
  NmEngine engine(data, space);
  const MiningResult partial = MineTrajPatterns(engine, cancelled);
  ASSERT_TRUE(partial.stats.aborted);
  ASSERT_GT(deliveries, 0);

  // Round-trip the captured checkpoint through the file format and
  // resume: bit-identical to the uninterrupted run.
  std::stringstream ss;
  ASSERT_TRUE(WriteMinerCheckpoint(captured, ss).ok());
  MinerCheckpoint loaded;
  ASSERT_TRUE(ReadMinerCheckpoint(ss, &loaded).ok());
  NmEngine resume_engine(data, space);
  const MiningResult resumed = MineTrajPatterns(resume_engine, base, &loaded);
  ASSERT_FALSE(resumed.stats.aborted);
  ExpectBitIdentical(resumed.patterns, full.patterns);
}

TEST(MinerRunControlTest, MemoryBudgetHoldsAndStaysBitIdentical) {
  // A budget of a handful of columns forces chunked scoring and LRU
  // eviction, but the answer must not move: chunk boundaries and
  // evictions are pure bookkeeping.
  const TrajectoryDataset data = MakeMiningData();
  const MiningSpace space = MakeSpace();
  NmEngine unlimited_engine(data, space);
  const MiningResult unlimited =
      MineTrajPatterns(unlimited_engine, MakeOptions());
  ASSERT_FALSE(unlimited.stats.aborted);

  for (int threads : {1, 8}) {
    NmEngine engine(data, space);
    MinerOptions opt = MakeOptions(threads);
    opt.run.memory_budget_bytes = 8 * engine.column_bytes();
    const MiningResult result = MineTrajPatterns(engine, opt);
    ASSERT_FALSE(result.stats.aborted) << "threads=" << threads;
    ExpectBitIdentical(result.patterns, unlimited.patterns);
    EXPECT_GT(engine.cells_evicted(), 0u) << "threads=" << threads;
    EXPECT_LE(engine.arena_peak_bytes(), opt.run.memory_budget_bytes)
        << "threads=" << threads;
    EXPECT_GT(result.stats.cells_evicted, 0);
  }
}

TEST(MinerRunControlTest, ImpossibleBudgetStopsWithTypedReason) {
  // Less than one column: no shedding or chunk-shrinking can help, so
  // the run gives up with the typed budget stop instead of thrashing.
  const TrajectoryDataset data = MakeMiningData();
  NmEngine engine(data, MakeSpace());
  MinerOptions opt = MakeOptions();
  opt.run.memory_budget_bytes = 1;
  const MiningResult result = MineTrajPatterns(engine, opt);
  EXPECT_TRUE(result.stats.aborted);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kMemoryBudgetExceeded);
}

TEST(MinerRunControlTest, InjectedAllocFailureStopsWithTypedReason) {
  const TrajectoryDataset data = MakeMiningData();
  NmEngine engine(data, MakeSpace());
  FaultScheduleOptions fo;
  fo.fail_rate = 1.0;
  FaultSchedule faults(fo);
  engine.set_alloc_fault_hook(
      [&faults](size_t) { return faults.ShouldFail(); });
  const MiningResult result = MineTrajPatterns(engine, MakeOptions());
  EXPECT_TRUE(result.stats.aborted);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kAllocFailed);
  EXPECT_GT(faults.calls(), 0);

  // Clearing the hook heals the engine: the same instance then mines the
  // full answer (nothing was left staged or torn by the failed warm-up).
  engine.set_alloc_fault_hook(nullptr);
  const MiningResult healed = MineTrajPatterns(engine, MakeOptions());
  EXPECT_FALSE(healed.stats.aborted);
  EXPECT_FALSE(healed.patterns.empty());
}

// ------------------------------------------- baseline miners, same contract

TEST(BaselineStopTest, PbPrefixCapReportsThroughSharedStopFields) {
  const TrajectoryDataset data = MakeMiningData();
  NmEngine engine(data, MakeSpace());
  PbMinerOptions opt;
  opt.k = 10;
  opt.max_length = 4;
  opt.max_expanded_prefixes = 1;
  const PbMiningResult result = MinePbPatterns(engine, opt);
  EXPECT_TRUE(result.stats.hit_prefix_cap);
  EXPECT_TRUE(result.stats.aborted);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kWorkCap);
}

TEST(BaselineStopTest, PbCancellationStopsTyped) {
  const TrajectoryDataset data = MakeMiningData();
  NmEngine engine(data, MakeSpace());
  PbMinerOptions opt;
  opt.k = 10;
  opt.max_length = 4;
  opt.run.token.Cancel();
  const PbMiningResult result = MinePbPatterns(engine, opt);
  EXPECT_TRUE(result.stats.aborted);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kCancelled);
}

TEST(BaselineStopTest, MatchAprioriDeadlineStopsTyped) {
  const TrajectoryDataset data = MakeMiningData();
  NmEngine engine(data, MakeSpace());
  MatchMinerOptions opt;
  opt.run.SetDeadlineAfterMillis(-1.0);
  const MatchMiningResult result = MineMatchPatterns(engine, opt);
  EXPECT_TRUE(result.stats.aborted);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kDeadlineExceeded);
}

// ----------------------------------------------------- mining supervisor

std::string TempCheckpointPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(MiningSupervisorTest, UninterruptedRunMatchesPlainMining) {
  const TrajectoryDataset data = MakeMiningData();
  const MiningSpace space = MakeSpace();
  NmEngine plain_engine(data, space);
  const MiningResult plain = MineTrajPatterns(plain_engine, MakeOptions());

  const std::string path = TempCheckpointPath("tp_supervisor_plain.ckpt");
  NmEngine engine(data, space);
  SupervisorOptions sup;
  sup.checkpoint_path = path;
  sup.miner = MakeOptions();
  MiningSupervisor supervisor(&engine, sup);
  const SupervisorReport report = supervisor.Run();
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_FALSE(report.resumed_from_checkpoint);
  EXPECT_EQ(report.restarts, 0);
  EXPECT_EQ(report.sink_attempt_failures, 0);
  ExpectBitIdentical(report.result.patterns, plain.patterns);
  // The final checkpoint is durable and well-formed.
  MinerCheckpoint cp;
  EXPECT_TRUE(ReadMinerCheckpointFile(path, &cp).ok());
  std::remove(path.c_str());
}

TEST(MiningSupervisorTest, RetriesTransientSinkFailuresWithBackoff) {
  const TrajectoryDataset data = MakeMiningData();
  const MiningSpace space = MakeSpace();
  NmEngine plain_engine(data, space);
  const MiningResult plain = MineTrajPatterns(plain_engine, MakeOptions());

  const std::string path = TempCheckpointPath("tp_supervisor_retry.ckpt");
  NmEngine engine(data, space);
  FaultScheduleOptions fo;
  fo.fail_first = 2;  // a two-write outage burst, then clean
  FaultSchedule faults(fo);
  std::vector<double> sleeps;
  SupervisorOptions sup;
  sup.checkpoint_path = path;
  sup.miner = MakeOptions();
  sup.checkpoint_retries = 3;
  sup.backoff_initial_ms = 1.0;
  sup.backoff_multiplier = 2.0;
  sup.sink_faults = &faults;
  sup.sleep_fn = [&sleeps](double ms) { sleeps.push_back(ms); };
  MiningSupervisor supervisor(&engine, sup);
  const SupervisorReport report = supervisor.Run();
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.restarts, 0);
  EXPECT_EQ(report.sink_attempt_failures, 2);
  EXPECT_EQ(report.sink_deliveries_retried, 1);
  // Exponential schedule: 1ms, then 2ms, within the first delivery.
  ASSERT_GE(sleeps.size(), 2u);
  EXPECT_DOUBLE_EQ(sleeps[0], 1.0);
  EXPECT_DOUBLE_EQ(sleeps[1], 2.0);
  EXPECT_DOUBLE_EQ(report.backoff_ms_total, 3.0);
  // The outage never changed the answer.
  ExpectBitIdentical(report.result.patterns, plain.patterns);
  std::remove(path.c_str());
}

TEST(MiningSupervisorTest, DeadSinkStopsAtLastDurableBoundary) {
  const TrajectoryDataset data = MakeMiningData();
  const std::string path = TempCheckpointPath("tp_supervisor_dead.ckpt");
  NmEngine engine(data, MakeSpace());
  FaultScheduleOptions fo;
  fo.fail_rate = 1.0;  // the sink never recovers
  FaultSchedule faults(fo);
  SupervisorOptions sup;
  sup.checkpoint_path = path;
  sup.miner = MakeOptions();
  sup.checkpoint_retries = 2;
  sup.sink_faults = &faults;
  sup.sleep_fn = [](double) {};
  MiningSupervisor supervisor(&engine, sup);
  const SupervisorReport report = supervisor.Run();
  EXPECT_EQ(report.status.code(), StatusCode::kDataLoss);
  EXPECT_TRUE(report.result.stats.aborted);
  EXPECT_EQ(report.result.stats.stop_reason, StopReason::kSinkVeto);
  // 1 + retries attempts for the single delivery that was tried.
  EXPECT_EQ(report.sink_attempts, 3);
  EXPECT_EQ(report.sink_attempt_failures, 3);
  std::remove(path.c_str());
}

TEST(MiningSupervisorTest, ResumesFromExistingCheckpointFile) {
  const TrajectoryDataset data = MakeMiningData();
  const MiningSpace space = MakeSpace();
  const MinerOptions base = MakeOptions();
  NmEngine full_engine(data, space);
  const MiningResult full = MineTrajPatterns(full_engine, base);

  // A previous process "crashed" after persisting the iteration-1
  // boundary.
  const std::string path = TempCheckpointPath("tp_supervisor_resume.ckpt");
  {
    MinerOptions interrupted = base;
    interrupted.checkpoint_sink = [&path](const MinerCheckpoint& cp) {
      EXPECT_TRUE(WriteMinerCheckpointFile(cp, path).ok());
      return cp.iteration < 1;
    };
    NmEngine engine(data, space);
    const MiningResult partial = MineTrajPatterns(engine, interrupted);
    ASSERT_TRUE(partial.stats.aborted);
  }

  NmEngine engine(data, space);
  SupervisorOptions sup;
  sup.checkpoint_path = path;
  sup.miner = base;
  MiningSupervisor supervisor(&engine, sup);
  const SupervisorReport report = supervisor.Run();
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_TRUE(report.resumed_from_checkpoint);
  ExpectBitIdentical(report.result.patterns, full.patterns);
  std::remove(path.c_str());
}

TEST(MiningSupervisorTest, CorruptCheckpointFileSurfacesTypedError) {
  const TrajectoryDataset data = MakeMiningData();
  const std::string path = TempCheckpointPath("tp_supervisor_corrupt.ckpt");
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("trajpattern_checkpoint,v2\niteration,garbage\n", f);
    std::fclose(f);
  }
  NmEngine engine(data, MakeSpace());
  SupervisorOptions sup;
  sup.checkpoint_path = path;
  sup.miner = MakeOptions();
  MiningSupervisor supervisor(&engine, sup);
  const SupervisorReport report = supervisor.Run();
  // Corruption is surfaced, never silently clobbered by a fresh run.
  EXPECT_EQ(report.status.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(report.resumed_from_checkpoint);
  std::remove(path.c_str());
}

TEST(MiningSupervisorTest, CrashLoopBeyondMaxRestartsFails) {
  const TrajectoryDataset data = MakeMiningData();
  const std::string path = TempCheckpointPath("tp_supervisor_crashloop.ckpt");
  NmEngine engine(data, MakeSpace());
  SupervisorOptions sup;
  sup.checkpoint_path = path;
  sup.miner = MakeOptions();
  sup.max_restarts = 1;
  sup.write_fn = [](const MinerCheckpoint&, const std::string&) -> Status {
    throw std::runtime_error("disk controller on fire");
  };
  sup.sleep_fn = [](double) {};
  MiningSupervisor supervisor(&engine, sup);
  const SupervisorReport report = supervisor.Run();
  EXPECT_EQ(report.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(report.restarts, 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace trajpattern
