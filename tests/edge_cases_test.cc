#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "baseline/match_apriori.h"
#include "baseline/pb_miner.h"
#include "core/miner.h"
#include "core/nm_engine.h"
#include "core/parameters.h"
#include "core/pattern_group.h"
#include "prob/log_space.h"

namespace trajpattern {
namespace {

MiningSpace TinySpace() { return MiningSpace(Grid::UnitSquare(2), 0.3); }

TEST(EdgeCaseTest, EmptyDatasetMinesNothing) {
  const TrajectoryDataset empty;
  NmEngine engine(empty, TinySpace());
  // Touched alphabet is empty -> nothing to grow from.
  const MiningResult result = MineTrajPatterns(engine, {.k = 3});
  EXPECT_TRUE(result.patterns.empty());
  EXPECT_EQ(engine.TouchedCells().size(), 0u);
}

TEST(EdgeCaseTest, EmptyDatasetFullAlphabet) {
  const TrajectoryDataset empty;
  NmEngine engine(empty, TinySpace());
  MinerOptions opt;
  opt.k = 2;
  opt.restrict_to_touched_cells = false;
  opt.max_pattern_length = 2;
  // Every pattern scores 0 (no trajectories to sum over); the miner must
  // still terminate and return k patterns.
  const MiningResult result = MineTrajPatterns(engine, opt);
  EXPECT_EQ(result.patterns.size(), 2u);
  for (const auto& sp : result.patterns) {
    EXPECT_DOUBLE_EQ(sp.nm, 0.0);
  }
}

TEST(EdgeCaseTest, SingleSnapshotTrajectories) {
  TrajectoryDataset d;
  Trajectory t("one");
  t.Append(Point2(0.2, 0.2), 0.05);
  d.Add(std::move(t));
  NmEngine engine(d, TinySpace());
  MinerOptions opt;
  opt.k = 2;
  opt.max_pattern_length = 3;
  const MiningResult result = MineTrajPatterns(engine, opt);
  ASSERT_EQ(result.patterns.size(), 2u);
  // No window of length >= 2 exists, so multi-position patterns score
  // the floor and the best patterns must be singular.
  EXPECT_EQ(result.patterns[0].pattern.length(), 1u);
}

TEST(EdgeCaseTest, KLargerThanPatternSpace) {
  TrajectoryDataset d;
  Trajectory t("a");
  t.Append(Point2(0.2, 0.2), 0.05);
  t.Append(Point2(0.8, 0.8), 0.05);
  d.Add(std::move(t));
  NmEngine engine(d, TinySpace());
  MinerOptions opt;
  opt.k = 1000;  // far more than the bounded pattern space
  opt.max_pattern_length = 2;
  const MiningResult result = MineTrajPatterns(engine, opt);
  // All patterns up to length 2 over the touched alphabet.
  EXPECT_GT(result.patterns.size(), 0u);
  EXPECT_LE(result.patterns.size(), 1000u);
  EXPECT_FALSE(result.stats.hit_iteration_cap);
}

TEST(EdgeCaseTest, MinLengthBeyondTrajectoriesYieldsFloorScores) {
  TrajectoryDataset d;
  Trajectory t("short");
  t.Append(Point2(0.2, 0.2), 0.05);
  t.Append(Point2(0.2, 0.2), 0.05);
  d.Add(std::move(t));
  NmEngine engine(d, TinySpace());
  MinerOptions opt;
  opt.k = 2;
  opt.min_length = 5;  // longer than any trajectory
  opt.max_pattern_length = 5;
  const MiningResult result = MineTrajPatterns(engine, opt);
  for (const auto& sp : result.patterns) {
    EXPECT_GE(sp.pattern.length(), 5u);
    EXPECT_DOUBLE_EQ(sp.nm, LogFloor());  // unsatisfiable, floor-scored
  }
}

TEST(EdgeCaseTest, BaselinesHandleEmptyData) {
  const TrajectoryDataset empty;
  NmEngine engine(empty, TinySpace());
  PbMinerOptions pb;
  pb.k = 3;
  pb.max_length = 2;
  EXPECT_TRUE(MinePbPatterns(engine, pb).patterns.empty());
  MatchMinerOptions mo;
  mo.k = 3;
  mo.max_length = 2;
  EXPECT_TRUE(MineMatchPatterns(engine, mo).patterns.empty());
  EXPECT_TRUE(BruteForceTopK(engine, 3, 2).empty());
}

TEST(EdgeCaseTest, GroupingSinglePattern) {
  const Grid grid = Grid::UnitSquare(4);
  std::vector<ScoredPattern> one = {
      {Pattern(std::vector<CellId>{0, 1}), -1.0}};
  const auto groups = GroupPatterns(one, grid, 0.1);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 1u);
}

TEST(EdgeCaseTest, SuggestParametersOnEmptyData) {
  const ParameterSuggestion s = SuggestParameters(TrajectoryDataset(), 16);
  EXPECT_GE(s.cells_per_side, 1);
  EXPECT_GT(s.delta, 0.0);
  EXPECT_GT(s.gamma, 0.0);
  // The suggested space must be constructible.
  const MiningSpace space = s.MakeSpace();
  EXPECT_GT(space.grid.num_cells(), 0);
}

TEST(EdgeCaseTest, ZeroSigmaTrajectoriesAreExactIndicators) {
  // sigma = 0 degenerates the probability to an indicator, which must
  // flow through NM without NaNs.
  TrajectoryDataset d;
  Trajectory t("exact");
  t.Append(Point2(0.25, 0.25), 0.0);
  t.Append(Point2(0.75, 0.75), 0.0);
  d.Add(std::move(t));
  const MiningSpace space(Grid::UnitSquare(2), 0.3);
  NmEngine engine(d, space);
  const CellId a = space.grid.CellOf(Point2(0.25, 0.25));
  const CellId b = space.grid.CellOf(Point2(0.75, 0.75));
  // On-cell positions within delta: probability 1, log 0.
  EXPECT_DOUBLE_EQ(engine.NmTotal(Pattern(std::vector<CellId>{a, b})), 0.0);
  // Mismatched cell: floor, not NaN.
  const double nm = engine.NmTotal(Pattern(std::vector<CellId>{b, a}));
  EXPECT_TRUE(std::isfinite(nm));
  EXPECT_LT(nm, LogFloor() / 2.0 + 1.0);
}

}  // namespace
}  // namespace trajpattern
